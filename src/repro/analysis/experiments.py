"""Experiment runners: one function per table/figure of the paper.

Each runner builds fresh machines, drives the attack (or the relevant
sub-phase), and returns a result object with the measured numbers plus
a ``render()`` producing the same rows/series the paper reports.  The
benchmark harness and the examples are thin wrappers around these.
"""

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.report import render_series, render_table
from repro.core.explicit import RowhammerTestTool
from repro.core.hammer import DoubleSidedHammer, HammerTarget
from repro.core.llc_eviction import selection_false_positive_rate
from repro.core.llc_offline import llc_miss_rate_by_size
from repro.core.pthammer import PThammerAttack, PThammerConfig, PThammerReport
from repro.core.tlb_eviction import TLBEvictionSetBuilder, tlb_miss_rate_by_size
from repro.core.uarch import UarchFacts
from repro.defenses import CATTPolicy, CTAPolicy, RIPRHPolicy, StockPolicy, ZebRAMPolicy
from repro.machine import AttackerView, Inspector, Machine
from repro.machine.configs import SCALED_MACHINES, TABLE1_MACHINES, tiny_test_config
from repro.utils.stats import Histogram, RunningStats, percentile
from repro.utils.units import cycles_to_seconds, format_duration, format_size


class ExperimentContext:
    """One booted machine with an attacker, an inspector, and the facts."""

    def __init__(self, config, policy=None):
        self.machine = Machine(config, policy=policy)
        self.attacker = AttackerView(self.machine, self.machine.boot_process())
        self.inspector = Inspector(self.machine)
        self.facts = UarchFacts.from_config(config)

    def seconds(self, cycles):
        """Virtual cycles -> seconds at this machine's clock."""
        return cycles_to_seconds(cycles, self.machine.config.cpu.freq_ghz)


# ----------------------------------------------------------------------
# Table I — system configurations


@dataclass
class Table1Result:
    rows: List[tuple]

    def render(self):
        return render_table(
            ["Machine", "CPU arch", "TLB assoc", "LLC", "DRAM"],
            self.rows,
            title="Table I: system configurations",
        )


def table1(config_fns=TABLE1_MACHINES):
    """Reproduce Table I from the machine presets."""
    rows = []
    for config_fn in config_fns:
        config = config_fn()
        tlb = config.tlb
        rows.append(
            (
                config.name,
                "%.1f GHz" % config.cpu.freq_ghz,
                "%d-way L1d, %d-way L2s" % (tlb.l1d_ways, tlb.l2s_ways),
                "%d-way, %s" % (config.cache.llc_ways, format_size(config.llc_bytes())),
                format_size(config.dram.size_bytes),
            )
        )
    return Table1Result(rows)


# ----------------------------------------------------------------------
# Figures 3 and 4 — eviction-set size sweeps


@dataclass
class EvictionSweepResult:
    name: str
    series: Dict[str, Dict[int, float]]  # machine -> size -> miss rate
    knee: Dict[str, int] = field(default_factory=dict)

    def render(self):
        parts = []
        for machine, points in self.series.items():
            parts.append(
                render_series(
                    "%s [%s]" % (self.name, machine),
                    points,
                    x_label="eviction-set size",
                    y_label="miss rate",
                )
            )
        return "\n".join(parts)

    def min_reliable_size(self, machine, level=0.95):
        """Smallest size whose rate and all larger sizes stay >= level."""
        points = self.series[machine]
        reliable = None
        for size in sorted(points, reverse=True):
            if points[size] >= level:
                reliable = size
            else:
                break
        return reliable


def figure3(config_fns=SCALED_MACHINES, sizes=range(8, 17), trials=80):
    """Figure 3: TLB miss rate vs eviction-set size, per machine."""
    series = {}
    for config_fn in config_fns:
        context = ExperimentContext(config_fn())
        builder = TLBEvictionSetBuilder(context.attacker, context.facts)
        series[context.machine.config.name] = tlb_miss_rate_by_size(
            context.attacker, context.inspector, builder, sizes, trials=trials
        )
    return EvictionSweepResult("Figure 3: TLB eviction", series)


def figure4(config_fns=SCALED_MACHINES, sizes=None, trials=80):
    """Figure 4: LLC miss rate vs eviction-set size, per machine."""
    series = {}
    for config_fn in config_fns:
        context = ExperimentContext(config_fn())
        if sizes is None:
            machine_sizes = range(9, 2 * context.facts.llc_ways + 1)
        else:
            machine_sizes = sizes
        series[context.machine.config.name] = llc_miss_rate_by_size(
            context.attacker, context.inspector, context.facts, machine_sizes, trials=trials
        )
    return EvictionSweepResult("Figure 4: LLC eviction", series)


# ----------------------------------------------------------------------
# Table II — attack phase costs


@dataclass
class Table2Row:
    machine: str
    page_setting: str
    tlb_prep_s: float
    llc_prep_s: float
    tlb_select_s: float
    llc_select_s: float
    hammer_s: float
    check_s: float
    first_flip_s: Optional[float]


@dataclass
class Table2Result:
    rows: List[Table2Row]

    def render(self):
        return render_table(
            [
                "Machine",
                "Pages",
                "TLB prep",
                "LLC prep",
                "TLB select",
                "LLC select",
                "Hammer",
                "Check",
                "First flip",
            ],
            [
                (
                    r.machine,
                    r.page_setting,
                    format_duration(r.tlb_prep_s),
                    format_duration(r.llc_prep_s),
                    format_duration(r.tlb_select_s),
                    format_duration(r.llc_select_s),
                    format_duration(r.hammer_s),
                    format_duration(r.check_s),
                    format_duration(r.first_flip_s) if r.first_flip_s else "(none)",
                )
                for r in self.rows
            ],
            title="Table II: PThammer phase costs (virtual time)",
        )


def table2(
    config_fns=SCALED_MACHINES,
    page_settings=(True, False),
    attack_config=None,
):
    """Table II: per-phase virtual-time costs, both page settings."""
    rows = []
    for config_fn in config_fns:
        for superpages in page_settings:
            context = ExperimentContext(config_fn())
            config = attack_config or PThammerConfig()
            config.superpages = superpages
            attack = PThammerAttack(context.attacker, config)
            report = attack.run()
            tlb_select = (
                attack.tlb_builder.prep_cycles / max(1, attack.tlb_builder.pages_mapped)
            )
            rows.append(
                Table2Row(
                    machine=context.machine.config.name,
                    page_setting="superpage" if superpages else "regular",
                    tlb_prep_s=context.seconds(report.tlb_prep_cycles),
                    llc_prep_s=context.seconds(report.llc_prep_cycles),
                    tlb_select_s=context.seconds(int(tlb_select)),
                    llc_select_s=context.seconds(int(report.mean_selection_cycles())),
                    hammer_s=context.seconds(int(report.mean_hammer_cycles())),
                    check_s=context.seconds(int(report.mean_check_cycles())),
                    first_flip_s=(
                        context.seconds(report.cycles_to_first_flip)
                        if report.cycles_to_first_flip
                        else None
                    ),
                )
            )
    return Table2Result(rows)


# ----------------------------------------------------------------------
# Section IV-C — LLC eviction-set selection false positives


@dataclass
class SelectionResult:
    machine: str
    false_positive_rate: float
    targets: int

    def render(self):
        return (
            "Section IV-C [%s]: Algorithm-2 false positives: %.1f%% over %d targets"
            % (self.machine, 100 * self.false_positive_rate, self.targets)
        )


def section_4c_selection(config_fn, targets=16, superpages=True):
    """Section IV-C: Algorithm-2 selection false-positive rate (<= 6%)."""
    context = ExperimentContext(config_fn())
    attack = PThammerAttack(
        context.attacker,
        PThammerConfig(superpages=superpages, spray_slots=256),
    )
    report = PThammerReport(machine_name=context.machine.config.name, superpages=superpages)
    attack.prepare(report)
    target_vas = [
        attack.spray.target_va(slot)
        for slot in range(0, attack.spray.slots, max(1, attack.spray.slots // targets))
    ][:targets]
    rate = selection_false_positive_rate(
        context.attacker,
        context.inspector,
        attack.pool,
        attack.tlb_builder,
        target_vas,
        attack.config.tlb_eviction_size,
    )
    return SelectionResult(context.machine.config.name, rate, len(target_vas))


# ----------------------------------------------------------------------
# Section IV-D — pair-construction hit rates


@dataclass
class PairStatsResult:
    machine: str
    candidates: int
    flagged_slow: int
    slow_same_bank_rate: float
    same_bank_victim_rate: float

    def render(self):
        return (
            "Section IV-D [%s]: %d candidates, %d flagged slow; "
            "%.0f%% of slow pairs same-bank; %.0f%% of those one row apart"
            % (
                self.machine,
                self.candidates,
                self.flagged_slow,
                100 * self.slow_same_bank_rate,
                100 * self.same_bank_victim_rate,
            )
        )


def section_4d_pairs(config_fn, sample=32, spray_slots=512):
    """Section IV-D: timing-flagged pairs vs DRAM ground truth.

    The paper: >95% of slow pairs share a bank; 90% of those are one
    victim row apart.
    """
    from repro.core.pair_finding import PairFinder

    context = ExperimentContext(config_fn())
    attack = PThammerAttack(
        context.attacker, PThammerConfig(spray_slots=spray_slots, pair_sample=sample)
    )
    report = PThammerReport(machine_name=context.machine.config.name, superpages=True)
    attack.prepare(report)
    finder = PairFinder(
        context.attacker,
        attack.facts,
        attack.spray,
        attack.tlb_builder,
        attack.config.tlb_eviction_size,
    )
    candidates = finder.candidate_pairs(limit=sample)
    llc_sets = {}
    conflict_level = finder.conflict_level()
    for pair in candidates:
        finder.conflict_score(
            pair,
            attack._llc_set_for(pair.va_a, llc_sets),
            attack._llc_set_for(pair.va_b, llc_sets),
        )
    slow, _ = PairFinder.split_by_conflict(candidates, conflict_level)
    same_bank = 0
    victim_apart = 0
    inspector = context.inspector
    for pair in slow:
        pte_a = inspector.l1pte_paddr(context.attacker.process, pair.va_a)
        pte_b = inspector.l1pte_paddr(context.attacker.process, pair.va_b)
        loc_a = inspector.dram_location(pte_a)
        loc_b = inspector.dram_location(pte_b)
        if loc_a.bank == loc_b.bank and loc_a.row != loc_b.row:
            same_bank += 1
            if abs(loc_a.row - loc_b.row) == 2:
                victim_apart += 1
    return PairStatsResult(
        machine=context.machine.config.name,
        candidates=len(candidates),
        flagged_slow=len(slow),
        slow_same_bank_rate=same_bank / len(slow) if slow else 0.0,
        same_bank_victim_rate=victim_apart / same_bank if same_bank else 0.0,
    )


# ----------------------------------------------------------------------
# Figure 5 — hammer-iteration budget vs time to first flip


@dataclass
class Figure5Result:
    machine: str
    series: Dict[int, Optional[float]]  # padding -> seconds-to-flip or None
    cliff_cycles: int

    def render(self):
        return render_series(
            "Figure 5 [%s] (predicted cliff ~%d cycles/iter)"
            % (self.machine, self.cliff_cycles),
            self.series,
            x_label="NOP padding (cycles)",
            y_label="s to first flip",
            y_format="%.4f",
        )


def figure5(config_fn, paddings=(0, 300, 600, 900, 1200, 1800, 2600), budget_windows=6,
            buffer_pages=1024):
    """Figure 5: slower hammer iterations take longer to flip, then never.

    Uses the rowhammer-test tool replica (explicit clflush hammering)
    with NOP padding, exactly like the paper's calibration.
    """
    context = ExperimentContext(config_fn())
    config = context.machine.config
    budget = budget_windows * config.dram.refresh_interval_cycles
    tool = RowhammerTestTool(
        context.attacker, context.inspector, context.facts, buffer_pages=buffer_pages
    )
    series = {}
    for padding in paddings:
        cycles = tool.time_to_first_flip(padding, budget)
        series[padding] = context.seconds(cycles) if cycles is not None else None
    cliff = context.machine.fault_model.max_iteration_cycles(
        config.dram.refresh_interval_cycles
    )
    return Figure5Result(config.name, series, cliff)


# ----------------------------------------------------------------------
# Figure 6 — per-hammer cycle distributions


@dataclass
class Figure6Result:
    machine: str
    page_setting: str
    costs: List[int]

    def render(self):
        stats = RunningStats()
        stats.extend(self.costs)
        histogram = Histogram(0, max(self.costs) + 100, 12)
        histogram.extend(self.costs)
        lines = [
            "Figure 6 [%s, %s pages]: %d rounds, mean %.0f, min %d, max %d cycles"
            % (
                self.machine,
                self.page_setting,
                stats.count,
                stats.mean,
                stats.minimum,
                stats.maximum,
            )
        ]
        edges = histogram.bin_edges()
        for i, count in enumerate(histogram.counts):
            lines.append(
                "  %6.0f-%6.0f : %s"
                % (edges[i], edges[i + 1], "#" * count)
            )
        return "\n".join(lines)

    def p95(self):
        return percentile(self.costs, 0.95)


def figure6(config_fn, superpages=True, rounds=50, spray_slots=512):
    """Figure 6: the cycle cost of each of 50 double-sided rounds."""
    context = ExperimentContext(config_fn())
    attack = PThammerAttack(
        context.attacker,
        PThammerConfig(superpages=superpages, spray_slots=spray_slots, pair_sample=8),
    )
    report = PThammerReport(machine_name=context.machine.config.name, superpages=superpages)
    attack.prepare(report)
    pairs, llc_sets = attack.find_pairs(report)
    if not pairs:
        raise RuntimeError("no same-bank pairs found for Figure 6")
    pair = pairs[0]
    size = attack.config.tlb_eviction_size
    hammer = DoubleSidedHammer(
        context.attacker,
        HammerTarget(pair.va_a, attack.tlb_builder.build(pair.va_a, size), llc_sets[pair.va_a]),
        HammerTarget(pair.va_b, attack.tlb_builder.build(pair.va_b, size), llc_sets[pair.va_b]),
    )
    costs = hammer.run(rounds)
    return Figure6Result(
        context.machine.config.name,
        "super" if superpages else "regular",
        costs,
    )


# ----------------------------------------------------------------------
# Sections IV-F and IV-G — privilege escalation, with and without defenses


@dataclass
class EscalationResult:
    machine: str
    defense: str
    escalated: bool
    method: Optional[str]
    flips_observed: int
    captures: Dict[str, int]
    ground_truth_flips: int
    first_flip_s: Optional[float]
    host_seconds: float

    def row(self):
        return (
            self.defense,
            "yes" if self.escalated else "no",
            self.method or "-",
            self.flips_observed,
            self.captures.get("l1pt", 0),
            self.captures.get("cred", 0),
            self.ground_truth_flips,
            format_duration(self.first_flip_s) if self.first_flip_s else "(none)",
        )


@dataclass
class DefenseMatrixResult:
    machine: str
    results: List[EscalationResult]

    def render(self):
        return render_table(
            [
                "Defense",
                "Escalated",
                "Method",
                "Flips seen",
                "L1PT caps",
                "Cred caps",
                "GT flips",
                "First flip",
            ],
            [r.row() for r in self.results],
            title="Sections IV-F/IV-G [%s]: PThammer vs software defenses"
            % self.machine,
        )


def run_escalation(config_fn, policy=None, attack_config=None, defense_name="stock"):
    """Run the full attack under one placement policy."""
    started = time.time()
    config = config_fn()
    context = ExperimentContext(config, policy=policy)
    attack = PThammerAttack(context.attacker, attack_config or PThammerConfig())
    report = attack.run()
    outcome = report.outcome
    return EscalationResult(
        machine=config.name,
        defense=defense_name,
        escalated=report.escalated,
        method=outcome.method if outcome else None,
        flips_observed=report.total_flips,
        captures=dict(outcome.captures) if outcome else {},
        ground_truth_flips=context.inspector.flip_count(),
        first_flip_s=(
            context.seconds(report.cycles_to_first_flip)
            if report.cycles_to_first_flip
            else None
        ),
        host_seconds=time.time() - started,
    )


def section_4g_defenses(base_seed=1, dense_seed=5):
    """Sections IV-F/G + §V: the attack against every placement policy.

    Runs the verified per-defense setups (knobs documented inline) on
    tiny-scale machines.  Expected shape — the paper's findings:

    * stock, CATT, RIP-RH — escalation via L1PT capture;
    * CTA — no L1PT capture ever (true-cell monotonicity holds), but
      escalation via the cred spray;
    * ZebRAM — no exploitable flips (the paper's acknowledged limit).

    CATT/RIP-RH/CTA runs use a densely vulnerable DIMM and a
    zone-filling spray: placement defenses concentrate page tables, and
    the capture probability scales with how much of the protected
    region the spray occupies (see EXPERIMENTS.md note 3).
    """
    dense = lambda: tiny_test_config_dense(dense_seed)
    runs = [
        (
            "stock",
            lambda: tiny_test_config(seed=base_seed),
            StockPolicy(),
            PThammerConfig(spray_slots=256, pair_sample=16, max_pairs=14),
        ),
        (
            "catt",
            dense,
            CATTPolicy(kernel_fraction=0.1),
            PThammerConfig(spray_slots=1000, pair_sample=20, max_pairs=12),
        ),
        (
            "rip-rh",
            dense,
            RIPRHPolicy(kernel_fraction=0.1),
            PThammerConfig(spray_slots=1000, pair_sample=20, max_pairs=12),
        ),
        (
            "cta",
            dense,
            CTAPolicy(),
            PThammerConfig(
                spray_slots=800,
                pair_sample=20,
                max_pairs=12,
                cred_spray_processes=1500,
            ),
        ),
        (
            "zebram",
            dense,
            ZebRAMPolicy(),
            PThammerConfig(
                spray_slots=256, pair_sample=12, max_pairs=6, superpages=False
            ),
        ),
    ]
    results = []
    for name, config_fn, policy, attack_config in runs:
        results.append(
            run_escalation(
                config_fn,
                policy=policy,
                attack_config=attack_config,
                defense_name=name,
            )
        )
    return DefenseMatrixResult("tiny-test", results)


def tiny_test_config_dense(seed):
    """A densely-vulnerable DIMM for the defense-bypass experiments."""
    from repro.machine.configs import tiny_test_config as _tiny

    return _tiny(seed=seed, cells_per_row_mean=40.0)
