"""Experiment specs and runners: one registered spec per paper artifact.

Every table/figure/section study is an :class:`ExperimentSpec` — a
task-list builder, a per-task run function (each task boots its own
machines), and a reduce function — registered by name in
:mod:`repro.analysis.engine`.  The CLI and the benchmark harness
dispatch through that registry; fan-out, checkpointing, and resume are
the engine's job, not the experiments'.

The historical free functions (``table1()`` ... ``run_escalation()``)
went through a deprecation release as engine-backed shims and are now
gone; ``run_experiment("<name>", options)`` with ``jobs=1`` reproduces
their serial results bit-for-bit (migration notes in
docs/EXPERIMENT_ENGINE.md).
"""

import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from repro.analysis import engine as _engine
from repro.analysis import warmstart
from repro.analysis.engine import ExperimentSpec, Task, register_experiment
from repro.analysis.report import render_series, render_table
from repro.analysis.result import ExperimentResult
from repro.core.explicit import RowhammerTestTool
from repro.core.hammer import DoubleSidedHammer, HammerTarget
from repro.core.llc_eviction import selection_false_positive_rate
from repro.core.llc_offline import llc_miss_rate_by_size
from repro.core.pthammer import PThammerAttack, PThammerConfig, PThammerReport
from repro.core.tlb_eviction import TLBEvictionSetBuilder, tlb_miss_rate_by_size
from repro.core.uarch import UarchFacts
from repro.defenses import (
    DEFENSE_PRESETS,
    CATTPolicy,
    CTAPolicy,
    RIPRHPolicy,
    StockPolicy,
    ZebRAMPolicy,
)
from repro.errors import ConfigError
from repro.machine import AttackerView, Inspector, Machine
from repro.machine.configs import (
    MACHINE_PRESETS,
    SCALED_MACHINES,
    TABLE1_MACHINES,
    machine_preset,
    tiny_test_config,
)
from repro.utils.stats import Histogram, RunningStats, percentile_summary
from repro.utils.units import cycles_to_seconds, format_duration, format_size


class ExperimentContext:
    """One booted machine with an attacker, an inspector, and the facts.

    Contexts report their machine to the experiment engine
    (:func:`repro.analysis.engine.observe_machine`), so machines booted
    inside an engine task contribute to the run-level metrics
    aggregation — and, when a telemetry session is active, their flip
    counts and hammer-round latencies to the live stream —
    automatically.

    Under an engine run with ``warm_start=True`` (and no explicit
    placement policy — cached snapshots are captured under the stock
    policy), the context restores the per-config post-boot snapshot
    from :mod:`repro.analysis.warmstart` instead of re-running setup;
    restored machines are byte-identical to cold-booted ones, metrics
    included, so results cannot depend on the warm-start flag.
    """

    def __init__(self, config, policy=None):
        snap = warmstart.lookup(config) if policy is None else None
        if snap is not None:
            self.machine = Machine(config).restore(snap)
            process = self.machine.kernel.processes[snap.meta["boot_pid"]]
        else:
            self.machine = Machine(config, policy=policy)
            process = self.machine.boot_process()
        self.attacker = AttackerView(self.machine, process)
        self.inspector = Inspector(self.machine)
        self.facts = UarchFacts.from_config(config)
        _engine.observe_machine(self.machine)

    def seconds(self, cycles):
        """Virtual cycles -> seconds at this machine's clock."""
        return cycles_to_seconds(cycles, self.machine.config.cpu.freq_ghz)


# ----------------------------------------------------------------------
# Shared spec helpers


def _machine_tasks(config_fns, extra=None):
    """One task per machine config factory, keyed by index and name."""
    tasks = []
    for index, config_fn in enumerate(config_fns):
        name = config_fn().name
        payload = {"index": index, "machine": name}
        if extra:
            payload.update(extra)
        tasks.append(Task(key="%d:%s" % (index, name), payload=payload))
    return tasks


def _single_machine_tasks(options, experiment):
    """The one-task list for experiments that run a single machine."""
    config_fn = options.get("config_fn")
    if config_fn is None:
        raise ConfigError(
            "experiment %r needs a machine (options['config_fn'], "
            "or --machine on the CLI)" % experiment
        )
    return [Task(key=config_fn().name, payload={"machine": config_fn().name})]


def _parse_machines(value):
    """Comma-separated preset names -> tuple of config factories."""
    names = [token.strip() for token in value.split(",") if token.strip()]
    if not names:
        raise ConfigError("--machines needs at least one preset name")
    return tuple(machine_preset(name) for name in names)


def _parse_sizes(value):
    """``8-16`` (inclusive range) or ``8,12,16`` -> tuple of ints."""
    value = value.strip()
    if "-" in value and "," not in value:
        lo, hi = value.split("-", 1)
        return tuple(range(int(lo), int(hi) + 1))
    sizes = tuple(int(token) for token in value.split(",") if token.strip())
    if not sizes:
        raise ConfigError("--sizes needs at least one eviction-set size")
    return sizes


def _machines_flag(parser, default_help="the three scaled Table-I machines"):
    parser.add_argument(
        "--machines",
        metavar="LIST",
        default=None,
        help="comma-separated machine presets from {%s} (default: %s)"
        % (",".join(sorted(MACHINE_PRESETS)), default_help),
    )


def _machine_flag(parser, default):
    parser.add_argument(
        "--machine",
        choices=sorted(MACHINE_PRESETS),
        default=default,
        help="machine preset (default: %(default)s)",
    )


# ----------------------------------------------------------------------
# Table I — system configurations


@dataclass
class Table1Result(ExperimentResult):
    rows: List[tuple]

    def render(self):
        return render_table(
            ["Machine", "CPU arch", "TLB assoc", "LLC", "DRAM"],
            self.rows,
            title="Table I: system configurations",
        )

    def to_rows(self):
        return ("machine", "cpu_arch", "tlb_assoc", "llc", "dram"), list(self.rows)


def _table1_run(task, options):
    config = options["config_fns"][task.payload["index"]]()
    tlb = config.tlb
    return [
        config.name,
        "%.1f GHz" % config.cpu.freq_ghz,
        "%d-way L1d, %d-way L2s" % (tlb.l1d_ways, tlb.l2s_ways),
        "%d-way, %s" % (config.cache.llc_ways, format_size(config.llc_bytes())),
        format_size(config.dram.size_bytes),
    ]


def _table1_cli_options(args):
    return {"config_fns": _parse_machines(args.machines)} if args.machines else {}


TABLE1_SPEC = register_experiment(
    ExperimentSpec(
        name="table1",
        title="Table I: machine configurations",
        build_tasks=lambda options: _machine_tasks(options["config_fns"]),
        run_task=_table1_run,
        reduce=lambda data, options: Table1Result([tuple(row) for row in data]),
        defaults={"config_fns": TABLE1_MACHINES},
        cli_configure=lambda parser: _machines_flag(
            parser, default_help="the three full-size Table-I machines"
        ),
        cli_options=_table1_cli_options,
        smoke_argv=("--machines", "tiny"),
    )
)


# ----------------------------------------------------------------------
# Figures 3 and 4 — eviction-set size sweeps


@dataclass
class EvictionSweepResult(ExperimentResult):
    name: str
    series: Dict[str, Dict[int, float]]  # machine -> size -> miss rate
    knee: Dict[str, int] = field(default_factory=dict)

    def render(self):
        parts = []
        for machine, points in self.series.items():
            parts.append(
                render_series(
                    "%s [%s]" % (self.name, machine),
                    points,
                    x_label="eviction-set size",
                    y_label="miss rate",
                )
            )
        return "\n".join(parts)

    def to_rows(self):
        rows = [
            (machine, size, rate)
            for machine, points in self.series.items()
            for size, rate in sorted(points.items())
        ]
        if not rows:
            raise ConfigError("sweep result has no series")
        return ("machine", "size", "miss_rate"), rows

    def min_reliable_size(self, machine, level=0.95):
        """Smallest size whose rate and all larger sizes stay >= level.

        Returns ``None`` when even the largest measured size misses
        ``level`` — eviction on that machine is unreliable at every
        size, which is a finding, not an error; callers must handle it
        (see :meth:`require_reliable_size` for the raising variant).
        Unknown machine names raise :class:`ConfigError`.
        """
        if machine not in self.series:
            raise ConfigError(
                "no series for machine %r (have: %s)"
                % (machine, ", ".join(sorted(self.series)))
            )
        points = self.series[machine]
        reliable = None
        for size in sorted(points, reverse=True):
            if points[size] >= level:
                reliable = size
            else:
                break
        return reliable

    def require_reliable_size(self, machine, level=0.95):
        """Like :meth:`min_reliable_size` but raises instead of None."""
        size = self.min_reliable_size(machine, level=level)
        if size is None:
            raise ConfigError(
                "%s: no eviction-set size reaches a %.0f%% rate on %r"
                % (self.name, 100 * level, machine)
            )
        return size


def _figure3_run(task, options):
    context = ExperimentContext(options["config_fns"][task.payload["index"]]())
    builder = TLBEvictionSetBuilder(context.attacker, context.facts)
    points = tlb_miss_rate_by_size(
        context.attacker,
        context.inspector,
        builder,
        task.payload["sizes"],
        trials=task.payload["trials"],
    )
    return {"machine": context.machine.config.name, "points": points}


def _figure4_run(task, options):
    context = ExperimentContext(options["config_fns"][task.payload["index"]]())
    sizes = task.payload["sizes"]
    if sizes is None:
        sizes = range(9, 2 * context.facts.llc_ways + 1)
    points = llc_miss_rate_by_size(
        context.attacker,
        context.inspector,
        context.facts,
        sizes,
        trials=task.payload["trials"],
    )
    return {"machine": context.machine.config.name, "points": points}


def _sweep_reduce(title):
    def reduce(data, options):
        series = {}
        for entry in data:
            series[entry["machine"]] = {
                int(size): rate for size, rate in entry["points"].items()
            }
        return EvictionSweepResult(title, series)

    return reduce


def _sweep_tasks(options):
    sizes = options["sizes"]
    return _machine_tasks(
        options["config_fns"],
        extra={
            "sizes": None if sizes is None else [int(size) for size in sizes],
            "trials": options["trials"],
        },
    )


def _sweep_cli_configure(parser):
    _machines_flag(parser)
    parser.add_argument(
        "--sizes",
        metavar="SPEC",
        default=None,
        help="eviction-set sizes, '8-16' or '8,12,16' (default: per experiment)",
    )
    parser.add_argument("--trials", type=int, default=60)


def _sweep_cli_options(args):
    options = {"trials": args.trials}
    if args.machines:
        options["config_fns"] = _parse_machines(args.machines)
    if args.sizes:
        options["sizes"] = _parse_sizes(args.sizes)
    return options


FIGURE3_SPEC = register_experiment(
    ExperimentSpec(
        name="figure3",
        title="Figure 3: TLB miss rate vs eviction-set size",
        build_tasks=_sweep_tasks,
        run_task=_figure3_run,
        reduce=_sweep_reduce("Figure 3: TLB eviction"),
        defaults={
            "config_fns": SCALED_MACHINES,
            "sizes": tuple(range(8, 17)),
            "trials": 80,
        },
        cli_configure=_sweep_cli_configure,
        cli_options=_sweep_cli_options,
        smoke_argv=("--machines", "tiny", "--sizes", "8,12", "--trials", "10"),
    )
)

FIGURE4_SPEC = register_experiment(
    ExperimentSpec(
        name="figure4",
        title="Figure 4: LLC miss rate vs eviction-set size",
        build_tasks=_sweep_tasks,
        run_task=_figure4_run,
        reduce=_sweep_reduce("Figure 4: LLC eviction"),
        defaults={"config_fns": SCALED_MACHINES, "sizes": None, "trials": 80},
        cli_configure=_sweep_cli_configure,
        cli_options=_sweep_cli_options,
        smoke_argv=("--machines", "tiny", "--sizes", "10,13", "--trials", "10"),
    )
)


# ----------------------------------------------------------------------
# Table II — attack phase costs


@dataclass
class Table2Row:
    machine: str
    page_setting: str
    tlb_prep_s: float
    llc_prep_s: float
    tlb_select_s: float
    llc_select_s: float
    hammer_s: float
    check_s: float
    first_flip_s: Optional[float]


@dataclass
class Table2Result(ExperimentResult):
    rows: List[Table2Row]

    def render(self):
        return render_table(
            [
                "Machine",
                "Pages",
                "TLB prep",
                "LLC prep",
                "TLB select",
                "LLC select",
                "Hammer",
                "Check",
                "First flip",
            ],
            [
                (
                    r.machine,
                    r.page_setting,
                    format_duration(r.tlb_prep_s),
                    format_duration(r.llc_prep_s),
                    format_duration(r.tlb_select_s),
                    format_duration(r.llc_select_s),
                    format_duration(r.hammer_s),
                    format_duration(r.check_s),
                    format_duration(r.first_flip_s) if r.first_flip_s else "(none)",
                )
                for r in self.rows
            ],
            title="Table II: PThammer phase costs (virtual time)",
        )

    def to_rows(self):
        rows = [
            (
                row.machine,
                row.page_setting,
                row.tlb_prep_s,
                row.llc_prep_s,
                row.tlb_select_s,
                row.llc_select_s,
                row.hammer_s,
                row.check_s,
                "" if row.first_flip_s is None else row.first_flip_s,
            )
            for row in self.rows
        ]
        return (
            (
                "machine",
                "pages",
                "tlb_prep_s",
                "llc_prep_s",
                "tlb_select_s",
                "llc_select_s",
                "hammer_s",
                "check_s",
                "first_flip_s",
            ),
            rows,
        )


def _table2_tasks(options):
    tasks = []
    for index, config_fn in enumerate(options["config_fns"]):
        name = config_fn().name
        for superpages in options["page_settings"]:
            setting = "superpage" if superpages else "regular"
            tasks.append(
                Task(
                    key="%d:%s:%s" % (index, name, setting),
                    payload={
                        "index": index,
                        "machine": name,
                        "superpages": bool(superpages),
                    },
                )
            )
    return tasks


def _table2_run(task, options):
    context = ExperimentContext(options["config_fns"][task.payload["index"]]())
    base = options.get("attack_config")
    config = replace(base) if base is not None else PThammerConfig()
    config.superpages = task.payload["superpages"]
    attack = PThammerAttack(context.attacker, config)
    report = attack.run()
    tlb_select = attack.tlb_builder.prep_cycles / max(1, attack.tlb_builder.pages_mapped)
    return {
        "machine": context.machine.config.name,
        "page_setting": "superpage" if task.payload["superpages"] else "regular",
        "tlb_prep_s": context.seconds(report.tlb_prep_cycles),
        "llc_prep_s": context.seconds(report.llc_prep_cycles),
        "tlb_select_s": context.seconds(int(tlb_select)),
        "llc_select_s": context.seconds(int(report.mean_selection_cycles())),
        "hammer_s": context.seconds(int(report.mean_hammer_cycles())),
        "check_s": context.seconds(int(report.mean_check_cycles())),
        "first_flip_s": (
            context.seconds(report.cycles_to_first_flip)
            if report.cycles_to_first_flip
            else None
        ),
    }


def _table2_cli_configure(parser):
    _machines_flag(parser)
    parser.add_argument("--slots", type=int, default=384)


def _table2_cli_options(args):
    options = {
        "attack_config": PThammerConfig(spray_slots=args.slots, max_pairs=8)
    }
    if args.machines:
        options["config_fns"] = _parse_machines(args.machines)
    return options


TABLE2_SPEC = register_experiment(
    ExperimentSpec(
        name="table2",
        title="Table II: attack phase costs",
        build_tasks=_table2_tasks,
        run_task=_table2_run,
        reduce=lambda data, options: Table2Result([Table2Row(**row) for row in data]),
        defaults={
            "config_fns": SCALED_MACHINES,
            "page_settings": (True, False),
            "attack_config": None,
        },
        cli_configure=_table2_cli_configure,
        cli_options=_table2_cli_options,
        smoke_argv=("--machines", "tiny", "--slots", "224"),
    )
)


# ----------------------------------------------------------------------
# Section IV-C — LLC eviction-set selection false positives


@dataclass
class SelectionResult(ExperimentResult):
    machine: str
    false_positive_rate: float
    targets: int

    def render(self):
        return (
            "Section IV-C [%s]: Algorithm-2 false positives: %.1f%% over %d targets"
            % (self.machine, 100 * self.false_positive_rate, self.targets)
        )

    def to_rows(self):
        return (
            ("machine", "false_positive_rate", "targets"),
            [(self.machine, self.false_positive_rate, self.targets)],
        )


def _section_4c_data(config_fn, targets, superpages):
    context = ExperimentContext(config_fn())
    attack = PThammerAttack(
        context.attacker,
        PThammerConfig(superpages=superpages, spray_slots=256),
    )
    report = PThammerReport(machine_name=context.machine.config.name, superpages=superpages)
    attack.prepare(report)
    target_vas = [
        attack.spray.target_va(slot)
        for slot in range(0, attack.spray.slots, max(1, attack.spray.slots // targets))
    ][:targets]
    rate = selection_false_positive_rate(
        context.attacker,
        context.inspector,
        attack.pool,
        attack.tlb_builder,
        target_vas,
        attack.config.tlb_eviction_size,
    )
    return {
        "machine": context.machine.config.name,
        "false_positive_rate": rate,
        "targets": len(target_vas),
    }


def _sec4c_cli_configure(parser):
    _machine_flag(parser, default="t420-scaled")
    parser.add_argument("--targets", type=int, default=16)


SEC4C_SPEC = register_experiment(
    ExperimentSpec(
        name="sec4c",
        title="Section IV-C: Algorithm-2 selection false positives",
        build_tasks=lambda options: _single_machine_tasks(options, "sec4c"),
        run_task=lambda task, options: _section_4c_data(
            options["config_fn"], options["targets"], options["superpages"]
        ),
        reduce=lambda data, options: SelectionResult(**data[0]),
        defaults={"config_fn": None, "targets": 16, "superpages": True},
        cli_configure=_sec4c_cli_configure,
        cli_options=lambda args: {
            "config_fn": machine_preset(args.machine),
            "targets": args.targets,
        },
        smoke_argv=("--machine", "tiny", "--targets", "4"),
    )
)


# ----------------------------------------------------------------------
# Section IV-D — pair-construction hit rates


@dataclass
class PairStatsResult(ExperimentResult):
    machine: str
    candidates: int
    flagged_slow: int
    slow_same_bank_rate: float
    same_bank_victim_rate: float

    def render(self):
        return (
            "Section IV-D [%s]: %d candidates, %d flagged slow; "
            "%.0f%% of slow pairs same-bank; %.0f%% of those one row apart"
            % (
                self.machine,
                self.candidates,
                self.flagged_slow,
                100 * self.slow_same_bank_rate,
                100 * self.same_bank_victim_rate,
            )
        )

    def to_rows(self):
        return (
            (
                "machine",
                "candidates",
                "flagged_slow",
                "slow_same_bank_rate",
                "same_bank_victim_rate",
            ),
            [
                (
                    self.machine,
                    self.candidates,
                    self.flagged_slow,
                    self.slow_same_bank_rate,
                    self.same_bank_victim_rate,
                )
            ],
        )


def _section_4d_data(config_fn, sample, spray_slots):
    """Section IV-D measurement as plain data (engine task body)."""
    from repro.core.pair_finding import PairFinder

    context = ExperimentContext(config_fn())
    attack = PThammerAttack(
        context.attacker, PThammerConfig(spray_slots=spray_slots, pair_sample=sample)
    )
    report = PThammerReport(machine_name=context.machine.config.name, superpages=True)
    attack.prepare(report)
    finder = PairFinder(
        context.attacker,
        attack.facts,
        attack.spray,
        attack.tlb_builder,
        attack.config.tlb_eviction_size,
    )
    candidates = finder.candidate_pairs(limit=sample)
    llc_sets = {}
    conflict_level = finder.conflict_level()
    for pair in candidates:
        finder.conflict_score(
            pair,
            attack._llc_set_for(pair.va_a, llc_sets),
            attack._llc_set_for(pair.va_b, llc_sets),
        )
    slow, _ = PairFinder.split_by_conflict(candidates, conflict_level)
    same_bank = 0
    victim_apart = 0
    inspector = context.inspector
    for pair in slow:
        pte_a = inspector.l1pte_paddr(context.attacker.process, pair.va_a)
        pte_b = inspector.l1pte_paddr(context.attacker.process, pair.va_b)
        loc_a = inspector.dram_location(pte_a)
        loc_b = inspector.dram_location(pte_b)
        if loc_a.bank == loc_b.bank and loc_a.row != loc_b.row:
            same_bank += 1
            if abs(loc_a.row - loc_b.row) == 2:
                victim_apart += 1
    return {
        "machine": context.machine.config.name,
        "candidates": len(candidates),
        "flagged_slow": len(slow),
        "slow_same_bank_rate": same_bank / len(slow) if slow else 0.0,
        "same_bank_victim_rate": victim_apart / same_bank if same_bank else 0.0,
    }


def _sec4d_cli_configure(parser):
    _machine_flag(parser, default="t420-scaled")
    parser.add_argument("--sample", type=int, default=32)
    parser.add_argument("--slots", type=int, default=512)


SEC4D_SPEC = register_experiment(
    ExperimentSpec(
        name="sec4d",
        title="Section IV-D: pair-construction hit rates",
        build_tasks=lambda options: _single_machine_tasks(options, "sec4d"),
        run_task=lambda task, options: _section_4d_data(
            options["config_fn"], options["sample"], options["spray_slots"]
        ),
        reduce=lambda data, options: PairStatsResult(**data[0]),
        defaults={"config_fn": None, "sample": 32, "spray_slots": 512},
        cli_configure=_sec4d_cli_configure,
        cli_options=lambda args: {
            "config_fn": machine_preset(args.machine),
            "sample": args.sample,
            "spray_slots": args.slots,
        },
        smoke_argv=("--machine", "tiny", "--sample", "6", "--slots", "224"),
    )
)


# ----------------------------------------------------------------------
# Figure 5 — hammer-iteration budget vs time to first flip


@dataclass
class Figure5Result(ExperimentResult):
    machine: str
    series: Dict[int, Optional[float]]  # padding -> seconds-to-flip or None
    cliff_cycles: int

    def render(self):
        return render_series(
            "Figure 5 [%s] (predicted cliff ~%d cycles/iter)"
            % (self.machine, self.cliff_cycles),
            self.series,
            x_label="NOP padding (cycles)",
            y_label="s to first flip",
            y_format="%.4f",
        )

    def to_rows(self):
        rows = [
            (padding, "" if seconds is None else seconds)
            for padding, seconds in sorted(self.series.items())
        ]
        return ("nop_padding_cycles", "seconds_to_first_flip"), rows


def _figure5_run(task, options):
    """One machine's padding sweep (a single engine task: the paddings
    share one machine so flips accumulate exactly as the paper's
    calibration tool does)."""
    context = ExperimentContext(options["config_fn"]())
    config = context.machine.config
    budget = options["budget_windows"] * config.dram.refresh_interval_cycles
    tool = RowhammerTestTool(
        context.attacker,
        context.inspector,
        context.facts,
        buffer_pages=options["buffer_pages"],
    )
    series = {}
    for padding in options["paddings"]:
        cycles = tool.time_to_first_flip(padding, budget)
        series[int(padding)] = context.seconds(cycles) if cycles is not None else None
    cliff = context.machine.fault_model.max_iteration_cycles(
        config.dram.refresh_interval_cycles
    )
    return {"machine": config.name, "series": series, "cliff_cycles": cliff}


def _figure5_cli_configure(parser):
    _machine_flag(parser, default="t420-scaled")
    parser.add_argument(
        "--paddings",
        metavar="LIST",
        default=None,
        help="comma-separated NOP paddings in cycles (default: the paper's)",
    )
    parser.add_argument("--buffer-pages", type=int, default=256)


def _figure5_cli_options(args):
    options = {
        "config_fn": machine_preset(args.machine),
        "buffer_pages": args.buffer_pages,
    }
    if args.paddings:
        options["paddings"] = tuple(
            int(token) for token in args.paddings.split(",") if token.strip()
        )
    return options


FIGURE5_SPEC = register_experiment(
    ExperimentSpec(
        name="figure5",
        title="Figure 5: hammer-budget cliff",
        build_tasks=lambda options: _single_machine_tasks(options, "figure5"),
        run_task=_figure5_run,
        reduce=lambda data, options: Figure5Result(
            data[0]["machine"],
            {int(padding): s for padding, s in data[0]["series"].items()},
            data[0]["cliff_cycles"],
        ),
        defaults={
            "config_fn": None,
            "paddings": (0, 300, 600, 900, 1200, 1800, 2600),
            "budget_windows": 6,
            "buffer_pages": 1024,
        },
        cli_configure=_figure5_cli_configure,
        cli_options=_figure5_cli_options,
        smoke_argv=("--machine", "tiny", "--paddings", "0,900", "--buffer-pages", "256"),
    )
)


# ----------------------------------------------------------------------
# Figure 6 — per-hammer cycle distributions


@dataclass
class Figure6Result(ExperimentResult):
    machine: str
    page_setting: str
    costs: List[int]

    def render(self):
        stats = RunningStats()
        stats.extend(self.costs)
        histogram = Histogram(0, max(self.costs) + 100, 12)
        histogram.extend(self.costs)
        quantiles = self.percentiles()
        lines = [
            "Figure 6 [%s, %s pages]: %d rounds, mean %.0f, "
            "p50 %.0f, p95 %.0f, p99 %.0f, min %d, max %d cycles"
            % (
                self.machine,
                self.page_setting,
                stats.count,
                stats.mean,
                quantiles["p50"],
                quantiles["p95"],
                quantiles["p99"],
                stats.minimum,
                stats.maximum,
            )
        ]
        edges = histogram.bin_edges()
        for i, count in enumerate(histogram.counts):
            lines.append(
                "  %6.0f-%6.0f : %s"
                % (edges[i], edges[i + 1], "#" * count)
            )
        return "\n".join(lines)

    def to_rows(self):
        rows = [
            (self.machine, self.page_setting, index, cost)
            for index, cost in enumerate(self.costs)
        ]
        return ("machine", "pages", "round", "cycles"), rows

    def percentiles(self):
        """Exact p50/p95/p99 over the raw per-round costs."""
        return percentile_summary(self.costs)

    def p95(self):
        return self.percentiles()["p95"]


def _figure6_run(task, options):
    context = ExperimentContext(options["config_fn"]())
    superpages = options["superpages"]
    attack = PThammerAttack(
        context.attacker,
        PThammerConfig(
            superpages=superpages,
            spray_slots=options["spray_slots"],
            pair_sample=8,
        ),
    )
    report = PThammerReport(machine_name=context.machine.config.name, superpages=superpages)
    attack.prepare(report)
    pairs, llc_sets = attack.find_pairs(report)
    if not pairs:
        raise RuntimeError("no same-bank pairs found for Figure 6")
    pair = pairs[0]
    size = attack.config.tlb_eviction_size
    hammer = DoubleSidedHammer(
        context.attacker,
        HammerTarget(pair.va_a, attack.tlb_builder.build(pair.va_a, size), llc_sets[pair.va_a]),
        HammerTarget(pair.va_b, attack.tlb_builder.build(pair.va_b, size), llc_sets[pair.va_b]),
    )
    costs = hammer.run(options["rounds"])
    return {
        "machine": context.machine.config.name,
        "page_setting": "super" if superpages else "regular",
        "costs": costs,
    }


def _figure6_cli_configure(parser):
    _machine_flag(parser, default="t420-scaled")
    parser.add_argument("--regular-pages", action="store_true")
    parser.add_argument("--rounds", type=int, default=50)
    parser.add_argument("--slots", type=int, default=512)


FIGURE6_SPEC = register_experiment(
    ExperimentSpec(
        name="figure6",
        title="Figure 6: per-round cycle distribution",
        build_tasks=lambda options: _single_machine_tasks(options, "figure6"),
        run_task=_figure6_run,
        reduce=lambda data, options: Figure6Result(**data[0]),
        defaults={
            "config_fn": None,
            "superpages": True,
            "rounds": 50,
            "spray_slots": 512,
        },
        cli_configure=_figure6_cli_configure,
        cli_options=lambda args: {
            "config_fn": machine_preset(args.machine),
            "superpages": not args.regular_pages,
            "rounds": args.rounds,
            "spray_slots": args.slots,
        },
        smoke_argv=("--machine", "tiny", "--rounds", "10", "--slots", "224"),
    )
)


# ----------------------------------------------------------------------
# Sections IV-F and IV-G — privilege escalation, with and without defenses


@dataclass
class EscalationResult(ExperimentResult):
    machine: str
    defense: str
    escalated: bool
    method: Optional[str]
    flips_observed: int
    captures: Dict[str, int]
    ground_truth_flips: int
    first_flip_s: Optional[float]
    host_seconds: float

    def render(self):
        return (
            "Escalation [%s, defense=%s]: escalated=%s method=%s "
            "flips=%d gt-flips=%d first-flip=%s"
            % (
                self.machine,
                self.defense,
                "yes" if self.escalated else "no",
                self.method or "-",
                self.flips_observed,
                self.ground_truth_flips,
                format_duration(self.first_flip_s) if self.first_flip_s else "(none)",
            )
        )

    def row(self):
        return (
            self.defense,
            "yes" if self.escalated else "no",
            self.method or "-",
            self.flips_observed,
            self.captures.get("l1pt", 0),
            self.captures.get("cred", 0),
            self.ground_truth_flips,
            format_duration(self.first_flip_s) if self.first_flip_s else "(none)",
        )

    def csv_row(self):
        return (
            self.defense,
            int(self.escalated),
            self.method or "",
            self.flips_observed,
            self.captures.get("l1pt", 0),
            self.captures.get("cred", 0),
            self.ground_truth_flips,
        )

    def to_rows(self):
        return _DEFENSE_CSV_HEADER, [self.csv_row()]


_DEFENSE_CSV_HEADER = (
    "defense",
    "escalated",
    "method",
    "flips_observed",
    "l1pt_captures",
    "cred_captures",
    "ground_truth_flips",
)


@dataclass
class DefenseMatrixResult(ExperimentResult):
    machine: str
    results: List[EscalationResult]

    def render(self):
        return render_table(
            [
                "Defense",
                "Escalated",
                "Method",
                "Flips seen",
                "L1PT caps",
                "Cred caps",
                "GT flips",
                "First flip",
            ],
            [r.row() for r in self.results],
            title="Sections IV-F/IV-G [%s]: PThammer vs software defenses"
            % self.machine,
        )

    def to_rows(self):
        return _DEFENSE_CSV_HEADER, [r.csv_row() for r in self.results]


def _run_escalation_data(config_fn, policy, attack_config, defense_name):
    """One full attack under one placement policy, as plain data."""
    started = time.time()
    config = config_fn()
    context = ExperimentContext(config, policy=policy)
    attack = PThammerAttack(context.attacker, attack_config or PThammerConfig())
    report = attack.run()
    outcome = report.outcome
    return {
        "machine": config.name,
        "defense": defense_name,
        "escalated": report.escalated,
        "method": outcome.method if outcome else None,
        "flips_observed": report.total_flips,
        "captures": dict(outcome.captures) if outcome else {},
        "ground_truth_flips": context.inspector.flip_count(),
        "first_flip_s": (
            context.seconds(report.cycles_to_first_flip)
            if report.cycles_to_first_flip
            else None
        ),
        "host_seconds": time.time() - started,
    }


def _escalation_cli_configure(parser):
    _machine_flag(parser, default="tiny")
    parser.add_argument("--defense", choices=sorted(DEFENSE_PRESETS), default="none")
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument("--slots", type=int, default=None, help="spray slots")
    parser.add_argument("--pairs", type=int, default=None, help="pairs to hammer")
    parser.add_argument(
        "--pattern",
        metavar="NAME",
        default=None,
        help="hammer with a registered pattern (see `repro patterns list`)",
    )


def _escalation_cli_options(args):
    config_fn = machine_preset(args.machine)
    if args.seed is not None:
        base_fn, seed = config_fn, args.seed

        def config_fn():
            config = base_fn()
            config.seed = seed
            return config

    attack_config = None
    if args.slots is not None or args.pairs is not None or args.pattern is not None:
        attack_config = PThammerConfig()
        if args.slots is not None:
            attack_config.spray_slots = args.slots
        if args.pairs is not None:
            attack_config.pair_sample = args.pairs
            attack_config.max_pairs = args.pairs
        if args.pattern is not None:
            from repro.patterns import get as _get_pattern

            _get_pattern(args.pattern)  # unknown names fail before any task
            attack_config.pattern = args.pattern
    return {
        "config_fn": config_fn,
        "policy": DEFENSE_PRESETS[args.defense](),
        "attack_config": attack_config,
        "defense_name": args.defense,
    }


ESCALATION_SPEC = register_experiment(
    ExperimentSpec(
        name="escalation",
        title="Sections IV-F: one full escalation run",
        build_tasks=lambda options: _single_machine_tasks(options, "escalation"),
        run_task=lambda task, options: _run_escalation_data(
            options["config_fn"],
            options["policy"],
            options["attack_config"],
            options["defense_name"],
        ),
        reduce=lambda data, options: EscalationResult(**data[0]),
        defaults={
            "config_fn": None,
            "policy": None,
            "attack_config": None,
            "defense_name": "stock",
        },
        cli_configure=_escalation_cli_configure,
        cli_options=_escalation_cli_options,
        smoke_argv=("--machine", "tiny", "--seed", "1", "--slots", "256",
                    "--pairs", "14"),
    )
)


def _defense_runs(base_seed, dense_seed):
    """The verified per-defense setups (knobs documented inline).

    CATT/RIP-RH/CTA runs use a densely vulnerable DIMM and a
    zone-filling spray: placement defenses concentrate page tables, and
    the capture probability scales with how much of the protected
    region the spray occupies (see EXPERIMENTS.md note 3).
    """
    dense = lambda: tiny_test_config_dense(dense_seed)
    return [
        (
            "stock",
            lambda: tiny_test_config(seed=base_seed),
            StockPolicy(),
            PThammerConfig(spray_slots=256, pair_sample=16, max_pairs=14),
        ),
        (
            "catt",
            dense,
            CATTPolicy(kernel_fraction=0.1),
            PThammerConfig(spray_slots=1000, pair_sample=20, max_pairs=12),
        ),
        (
            "rip-rh",
            dense,
            RIPRHPolicy(kernel_fraction=0.1),
            PThammerConfig(spray_slots=1000, pair_sample=20, max_pairs=12),
        ),
        (
            "cta",
            dense,
            CTAPolicy(),
            PThammerConfig(
                spray_slots=800,
                pair_sample=20,
                max_pairs=12,
                cred_spray_processes=1500,
            ),
        ),
        (
            "zebram",
            dense,
            ZebRAMPolicy(),
            PThammerConfig(
                spray_slots=256, pair_sample=12, max_pairs=6, superpages=False
            ),
        ),
    ]


def _defenses_tasks(options):
    runs = _defense_runs(options["base_seed"], options["dense_seed"])
    names = [name for name, _, _, _ in runs]
    only = options.get("only")
    if only:
        unknown = sorted(set(only) - set(names))
        if unknown:
            raise ConfigError(
                "unknown defenses %s (matrix: %s)" % (unknown, ", ".join(names))
            )
        names = [name for name in names if name in set(only)]
    return [Task(key=name, payload={"defense": name}) for name in names]


def _defenses_run(task, options):
    for name, config_fn, policy, attack_config in _defense_runs(
        options["base_seed"], options["dense_seed"]
    ):
        if name == task.payload["defense"]:
            return _run_escalation_data(config_fn, policy, attack_config, name)
    raise ConfigError("defense %r is not in the matrix" % task.payload["defense"])


def _defenses_cli_configure(parser):
    parser.add_argument(
        "--only",
        metavar="LIST",
        default=None,
        help="comma-separated subset of the defense matrix "
        "(stock,catt,rip-rh,cta,zebram)",
    )
    parser.add_argument("--base-seed", type=int, default=1)
    parser.add_argument("--dense-seed", type=int, default=5)


def _defenses_cli_options(args):
    options = {"base_seed": args.base_seed, "dense_seed": args.dense_seed}
    if args.only:
        options["only"] = tuple(
            token.strip() for token in args.only.split(",") if token.strip()
        )
    return options


DEFENSES_SPEC = register_experiment(
    ExperimentSpec(
        name="defenses",
        title="Sections IV-G/V: the five-defense matrix",
        build_tasks=_defenses_tasks,
        run_task=_defenses_run,
        reduce=lambda data, options: DefenseMatrixResult(
            "tiny-test", [EscalationResult(**row) for row in data]
        ),
        defaults={"base_seed": 1, "dense_seed": 5, "only": None},
        cli_configure=_defenses_cli_configure,
        cli_options=_defenses_cli_options,
        smoke_argv=("--only", "stock"),
    )
)


def tiny_test_config_dense(seed):
    """A densely-vulnerable DIMM for the defense-bypass experiments."""
    from repro.machine.configs import tiny_test_config as _tiny

    return _tiny(seed=seed, cells_per_row_mean=40.0)


# ----------------------------------------------------------------------
# Pattern fuzzing — the Blacksmith-style campaign over the DSL


@dataclass
class PatternFuzzResult(ExperimentResult):
    machine: str
    fuzz_seed: int
    rows: List[tuple]

    def render(self):
        return render_table(
            ["Pattern", "Roles", "Ops", "Flips seen", "GT flips", "Escalated"],
            self.rows,
            title="Pattern fuzzing [%s, seed=%d]: shapes ranked by flips"
            % (self.machine, self.fuzz_seed),
        )

    def to_rows(self):
        header = ("pattern", "roles", "ops", "flips_observed",
                  "ground_truth_flips", "escalated")
        return header, [
            row[:5] + (int(row[5] == "yes"),) for row in self.rows
        ]


def _patternfuzz_tasks(options):
    config_fn = options.get("config_fn")
    if config_fn is None:
        raise ConfigError(
            "experiment 'patternfuzz' needs a machine (options['config_fn'], "
            "or --machine on the CLI)"
        )
    name = config_fn().name
    return [
        Task(key="%d:%s" % (index, name), payload={"index": index})
        for index in range(options["count"])
    ]


def _patternfuzz_run(task, options):
    from repro.patterns import PatternFuzzer, register, unroll

    index = task.payload["index"]
    fuzzer = PatternFuzzer(
        options["fuzz_seed"],
        max_roles=options["max_roles"],
        max_ops=options["max_ops"],
    )
    # Pattern (seed, index) is pure, so re-deriving it in a pool worker
    # gives the same shape the reducer will name in the ranking.
    pattern = register(fuzzer.pattern(index), replace=True)
    context = ExperimentContext(options["config_fn"]())
    attack_config = PThammerConfig(
        spray_slots=options["slots"],
        pair_sample=options["pairs"],
        max_pairs=options["pairs"],
        pattern=pattern.name,
    )
    report = PThammerAttack(context.attacker, attack_config).run()
    return {
        "index": index,
        "pattern": pattern.name,
        "roles": len(pattern.roles),
        "ops": len(unroll(pattern)),
        "flips_observed": report.total_flips,
        "ground_truth_flips": context.inspector.flip_count(),
        "escalated": report.escalated,
    }


def _patternfuzz_reduce(data, options):
    ranked = sorted(data, key=lambda row: (-row["flips_observed"], row["index"]))
    return PatternFuzzResult(
        machine=options["config_fn"]().name,
        fuzz_seed=options["fuzz_seed"],
        rows=[
            (
                row["pattern"],
                row["roles"],
                row["ops"],
                row["flips_observed"],
                row["ground_truth_flips"],
                "yes" if row["escalated"] else "no",
            )
            for row in ranked
        ],
    )


def _patternfuzz_cli_configure(parser):
    _machine_flag(parser, default="tiny")
    parser.add_argument(
        "--fuzz-seed", type=int, default=7, help="randomizer seed (default: 7)"
    )
    parser.add_argument(
        "--count", type=int, default=8, help="patterns to sample (default: 8)"
    )
    parser.add_argument("--seed", type=int, default=None, help="machine seed")
    parser.add_argument("--slots", type=int, default=256, help="spray slots")
    parser.add_argument("--pairs", type=int, default=12, help="pairs to hammer")
    parser.add_argument(
        "--max-roles", type=int, default=4, help="aggressor-set bound (default: 4)"
    )
    parser.add_argument(
        "--max-ops", type=int, default=16, help="unrolled-length bound (default: 16)"
    )


def _patternfuzz_cli_options(args):
    config_fn = machine_preset(args.machine)
    if args.seed is not None:
        base_fn, seed = config_fn, args.seed

        def config_fn():
            config = base_fn()
            config.seed = seed
            return config

    return {
        "config_fn": config_fn,
        "fuzz_seed": args.fuzz_seed,
        "count": args.count,
        "slots": args.slots,
        "pairs": args.pairs,
        "max_roles": args.max_roles,
        "max_ops": args.max_ops,
    }


PATTERNFUZZ_SPEC = register_experiment(
    ExperimentSpec(
        name="patternfuzz",
        title="Pattern fuzzing: seeded random patterns ranked by flips",
        build_tasks=_patternfuzz_tasks,
        run_task=_patternfuzz_run,
        reduce=_patternfuzz_reduce,
        defaults={
            "config_fn": None,
            "fuzz_seed": 7,
            "count": 8,
            "slots": 256,
            "pairs": 12,
            "max_roles": 4,
            "max_ops": 16,
        },
        cli_configure=_patternfuzz_cli_configure,
        cli_options=_patternfuzz_cli_options,
        smoke_argv=("--machine", "tiny", "--count", "2", "--slots", "224",
                    "--pairs", "6"),
    )
)
