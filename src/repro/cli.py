"""Command-line interface: run the attack and regenerate experiments.

Every registered experiment (``repro.analysis.engine`` registry) gets a
subcommand with common engine flags — ``--jobs N`` fans tasks across
worker processes, ``--checkpoint FILE`` streams per-task results to a
JSONL file, and ``--resume`` skips tasks that file already holds.
Rendered results go to stdout; progress (a TTY-aware live status line)
and the run summary go to stderr, so the rendered output is
byte-identical whatever ``--jobs`` is.

Attacks, experiments, and benchmarks record a run summary into the run
ledger (``.repro/runs/``, override with ``REPRO_LEDGER_DIR``) unless
``--no-record`` is given; ``repro runs list/show/diff`` inspects the
records and ``repro bench --record/--compare`` gates performance
against a named baseline.  See ``docs/RUN_LEDGER.md``.

Examples::

    python -m repro attack --machine t420-scaled
    python -m repro attack --machine tiny --defense catt --slots 1000
    python -m repro table1
    python -m repro figure3 --trials 60 --jobs 3
    python -m repro table1 --jobs 4 --warm-start
    python -m repro snapshot save machine.snap.json --machine tiny
    python -m repro snapshot info machine.snap.json
    python -m repro table2 --jobs 4 --checkpoint table2.jsonl
    python -m repro table2 --jobs 4 --checkpoint table2.jsonl --resume
    python -m repro figure5 --machine t420-scaled
    python -m repro defenses --jobs 5
    python -m repro mitigations
    python -m repro bench --record --baseline main
    python -m repro bench --compare main
    python -m repro runs list
    python -m repro runs list --all
    python -m repro runs diff 20260806T101500-ab 20260806T104200-cd
    python -m repro dash --once
    python -m repro runs watch --interval 2.0
    python -m repro trace --machine tiny --sample 0.05 --export-chrome trace.json
"""

import argparse
import sys
import time

from repro.analysis.engine import experiment_names, get_experiment, run_experiment
from repro.analysis.telemetry import ProgressReporter
from repro.core.pthammer import PThammerAttack, PThammerConfig
from repro.defenses import DEFENSE_PRESETS
from repro.errors import CampaignError, ConfigError, SnapshotError
from repro.machine import AttackerView, Inspector, Machine
from repro.machine.configs import MACHINE_PRESETS, tiny_test_config
from repro.observe.ledger import (
    ATTACK_RUN,
    RunLedger,
    RunRecord,
    config_fingerprint,
    diff_records,
)

#: Preset vocabularies (canonical homes: repro.machine.configs and
#: repro.defenses).  The aliases keep the CLI's historical import
#: surface — ``from repro.cli import MACHINES, DEFENSES`` — working.
MACHINES = MACHINE_PRESETS
DEFENSES = DEFENSE_PRESETS


def _machine_arg(parser, default="tiny"):
    parser.add_argument(
        "--machine",
        choices=sorted(MACHINES),
        default=default,
        help="machine preset (default: %(default)s)",
    )


def _engine_args(parser):
    group = parser.add_argument_group("engine")
    group.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for independent tasks (default: 1)",
    )
    group.add_argument(
        "--checkpoint",
        metavar="FILE",
        default=None,
        help="stream per-task results to this JSONL file",
    )
    group.add_argument(
        "--resume",
        action="store_true",
        help="skip tasks already recorded in --checkpoint",
    )
    group.add_argument(
        "--task-timeout",
        type=float,
        metavar="SECONDS",
        default=None,
        help="per-task host-time limit; hung workers are detected and killed",
    )
    group.add_argument(
        "--retries",
        "--task-retries",
        type=int,
        default=2,
        help="in-place retries of retryable task faults (default: 2)",
    )
    group.add_argument(
        "--warm-start",
        action="store_true",
        help="boot each machine config once and restore tasks from the "
        "snapshot instead of re-booting (results are byte-identical)",
    )
    _telemetry_args(group)


def _telemetry_args(group):
    group.add_argument(
        "--quiet",
        action="store_true",
        help="suppress progress and summary output on stderr",
    )
    group.add_argument(
        "--no-progress",
        action="store_true",
        help="disable the live progress display (keep the run summary)",
    )
    group.add_argument(
        "--no-record",
        action="store_true",
        help="do not append this run to the run ledger",
    )
    group.add_argument(
        "--no-telemetry",
        action="store_true",
        help="disable the streaming telemetry spool (docs/TELEMETRY.md); "
        "results are byte-identical either way",
    )


def _cmd_experiment(args):
    """Dispatch one registered experiment through the engine."""
    from repro.observe.stream import TelemetrySession

    spec = get_experiment(args.command)
    reporter = None
    if not args.no_progress:
        reporter = ProgressReporter(stream=sys.stderr, quiet=args.quiet)
    session = None if args.no_telemetry else TelemetrySession()
    try:
        options = spec.cli_options(args) if spec.cli_options else {}
        run = run_experiment(
            spec,
            options,
            jobs=args.jobs,
            checkpoint=args.checkpoint,
            resume=args.resume,
            progress=reporter,
            ledger=None if args.no_record else RunLedger(),
            task_timeout=args.task_timeout,
            retries=args.retries,
            warm_start=args.warm_start,
            telemetry=session,
        )
    except ConfigError as exc:
        print("repro: %s" % exc, file=sys.stderr)
        return 2
    print(run.result.render())
    if not args.quiet:
        if reporter is None:  # reporter.end() already printed the summary
            print(run.summary(), file=sys.stderr)
        if run.telemetry:
            totals = run.telemetry["totals"]
            print(
                "telemetry: %.2f task/s, %d flip(s)%s (watch live with "
                "`repro dash`)"
                % (
                    totals["throughput_mean"],
                    totals["flips"],
                    ", hammer p50 %.0f cycles" % totals["latency_p50"]
                    if "latency_p50" in totals
                    else "",
                ),
                file=sys.stderr,
            )
        if run.run_id:
            print("run recorded: %s" % run.run_id, file=sys.stderr)
    return 0


def _dash_args(parser):
    """Shared flags of ``repro dash`` and ``repro runs watch``."""
    parser.add_argument(
        "--spool",
        metavar="DIR",
        default=None,
        help="spool directory (default: the newest under the telemetry root)",
    )
    parser.add_argument(
        "--root",
        metavar="DIR",
        default=None,
        help="telemetry root (default: .repro/telemetry, or REPRO_TELEMETRY_DIR)",
    )
    parser.add_argument(
        "--interval",
        type=float,
        default=1.0,
        help="seconds between dashboard refreshes (default: 1.0)",
    )
    parser.add_argument(
        "--once",
        action="store_true",
        help="render a single plain-text frame and exit (no ANSI; CI-friendly)",
    )


def _cmd_dash(args):
    """``repro dash`` / ``repro runs watch`` — the live dashboard."""
    from repro.analysis.telemetry import Dashboard
    from repro.observe.stream import (
        TelemetryAggregator,
        default_spool_root,
        discover_spool,
    )

    spool = args.spool or discover_spool(args.root)
    if spool is None:
        print(
            "repro: no telemetry spool under %s — run an experiment first "
            "(telemetry is on by default) or pass --spool"
            % (args.root or default_spool_root()),
            file=sys.stderr,
        )
        return 2
    try:
        aggregator = TelemetryAggregator(spool)
    except ConfigError as exc:
        print("repro: %s" % exc, file=sys.stderr)
        return 2
    dashboard = Dashboard(
        aggregator, stream=sys.stdout, ansi=False if args.once else None
    )
    try:
        dashboard.run(interval=args.interval, once=args.once)
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_attack(args):
    pattern_name = getattr(args, "pattern", None)
    if pattern_name is not None:
        from repro.patterns import get as get_pattern

        try:
            get_pattern(pattern_name)  # unknown names fail before any work
        except ConfigError as exc:
            print("repro: %s" % exc, file=sys.stderr)
            return 2
    config = MACHINES[args.machine]()
    if args.seed is not None:
        config.seed = args.seed
    policy = DEFENSES[args.defense]()
    machine = Machine(config, policy=policy)
    chaos_name = getattr(args, "chaos", None)
    if chaos_name:
        from repro.chaos import ChaosInjector, chaos_profile

        machine.attach_chaos(ChaosInjector(chaos_profile(chaos_name)))
    attacker = AttackerView(machine, machine.boot_process())
    attack_config = PThammerConfig(
        superpages=not args.regular_pages,
        spray_slots=args.slots,
        pair_sample=args.pairs,
        max_pairs=args.pairs,
        cred_spray_processes=args.cred_spray,
        pattern=pattern_name,
    )
    profiling = getattr(args, "profile", False)
    trace_path = getattr(args, "trace", None)
    trace_file = _open_trace_destination(trace_path)
    if profiling or trace_path:
        machine.trace.enable()
    print(
        "PThammer vs %s (defense: %s%s%s); attacker uid=%d"
        % (
            config.name,
            args.defense,
            ", chaos: %s" % chaos_name if chaos_name else "",
            ", pattern: %s" % pattern_name if pattern_name else "",
            attacker.getuid(),
        )
    )
    started = time.time()
    attack = PThammerAttack(attacker, attack_config)
    report = attack.run()
    print(report.summary())
    if report.outcome:
        for note in report.outcome.details:
            print("  - %s" % note)
    if chaos_name:
        resilience_counters = {
            name: value
            for name, value in sorted(machine.metrics.counters().items())
            if name.startswith(("chaos.", "recovery."))
        }
        print(
            "chaos/recovery: %s"
            % (
                ", ".join(
                    "%s=%d" % item for item in resilience_counters.items()
                )
                or "none"
            )
        )
    print(
        "uid after attack: %d | ground-truth flips: %d | host %.1fs"
        % (attacker.getuid(), Inspector(machine).flip_count(), time.time() - started)
    )
    if profiling:
        from repro.analysis import profile_trace

        print()
        print(
            profile_trace(
                machine.trace, machine=config.name, freq_ghz=config.cpu.freq_ghz
            ).render()
        )
    if trace_file is not None:
        from repro.analysis import write_trace_jsonl

        with trace_file:
            lines = write_trace_jsonl(machine.trace, trace_file, machine=config.name)
        print("wrote %d trace lines to %s" % (lines, trace_path))
    code = 0 if report.escalated == (args.defense not in ("zebram",)) else 1
    if not getattr(args, "no_record", False):
        record = RunRecord.new(
            ATTACK_RUN,
            "attack",
            machine=config.name,
            config_fingerprint=config_fingerprint(config),
            command="repro attack --machine %s --defense %s%s%s"
            % (
                args.machine,
                args.defense,
                " --chaos %s" % chaos_name if chaos_name else "",
                " --pattern %s" % pattern_name if pattern_name else "",
            ),
            timings={
                "host_seconds": round(time.time() - started, 6),
                "virtual_cycles": machine.cycles,
            },
            phases=[
                {"name": name, "start": start, "end": end, "cycles": end - start}
                for name, start, end in report.timeline
            ],
            metrics=machine.metrics.snapshot_values(),
            outcome={
                "escalated": report.escalated,
                "flips": Inspector(machine).flip_count(),
                "uid_after": attacker.getuid(),
                "exit_code": code,
                "chaos": chaos_name,
                "checkpoint": attack.checkpoint(),
                "degradations": list(report.degradations),
            },
        )
        RunLedger().record(record)
        print("run recorded: %s" % record.run_id, file=sys.stderr)
    return code


def _open_trace_destination(path):
    """Open a JSONL destination up-front, before the attack runs.

    A bad path should fail in milliseconds, not after a multi-minute
    attack has already completed.
    """
    if path is None:
        return None
    try:
        return open(path, "w")
    except OSError as exc:
        raise SystemExit("repro: cannot write trace file %s: %s" % (path, exc))


def build_parser():
    """Construct the full argument parser (shared with check_docs).

    Kept separate from :func:`main` so tooling — notably
    ``repro.tools.check_docs``'s CLI-invocation validator — can
    introspect the real subcommand and flag surface without running
    anything.
    """
    parser = argparse.ArgumentParser(
        prog="repro", description="PThammer reproduction experiments"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    attack = commands.add_parser("attack", help="run the end-to-end attack")
    _machine_arg(attack)
    attack.add_argument("--defense", choices=sorted(DEFENSES), default="none")
    attack.add_argument("--slots", type=int, default=256, help="spray slots")
    attack.add_argument("--pairs", type=int, default=12, help="pairs to hammer")
    attack.add_argument("--seed", type=int, default=None)
    attack.add_argument("--cred-spray", type=int, default=0)
    attack.add_argument(
        "--regular-pages",
        action="store_true",
        help="use the regular-page setting instead of superpages",
    )
    attack.add_argument(
        "--profile",
        action="store_true",
        help="enable tracing and print the per-phase cycle breakdown",
    )
    attack.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="enable tracing and write the JSONL trace to FILE",
    )
    attack.add_argument(
        "--chaos",
        metavar="PROFILE",
        default=None,
        help="inject system noise from a chaos profile "
        "(see `repro chaos list`); enables the self-healing pipeline",
    )
    attack.add_argument(
        "--pattern",
        metavar="NAME",
        default=None,
        help="hammer with a registered pattern (see `repro patterns list`) "
        "instead of the hard-coded double-sided loop",
    )
    attack.add_argument(
        "--no-record",
        action="store_true",
        help="do not append this run to the run ledger",
    )

    patterns_cmd = commands.add_parser(
        "patterns", help="inspect the registered hammer patterns"
    )
    patterns_commands = patterns_cmd.add_subparsers(
        dest="patterns_command", required=True
    )
    patterns_commands.add_parser("list", help="list the registered patterns")
    patterns_show = patterns_commands.add_parser(
        "show", help="show one pattern's DSL text and unrolled ops"
    )
    patterns_show.add_argument(
        "name", help="pattern name (see `repro patterns list`)"
    )

    chaos_cmd = commands.add_parser(
        "chaos", help="inspect the built-in system-noise profiles"
    )
    chaos_commands = chaos_cmd.add_subparsers(dest="chaos_command", required=True)
    chaos_commands.add_parser("list", help="list the built-in chaos profiles")
    chaos_show = chaos_commands.add_parser(
        "show", help="show one profile's sources and parameters"
    )
    chaos_show.add_argument("profile", help="profile name (see `repro chaos list`)")

    trace_cmd = commands.add_parser(
        "trace", help="run the attack with tracing on; export and profile it"
    )
    _machine_arg(trace_cmd)
    trace_cmd.add_argument("--defense", choices=sorted(DEFENSES), default="none")
    trace_cmd.add_argument("--slots", type=int, default=256, help="spray slots")
    trace_cmd.add_argument("--pairs", type=int, default=12, help="pairs to hammer")
    trace_cmd.add_argument("--seed", type=int, default=None)
    trace_cmd.add_argument(
        "--out", metavar="FILE", default=None, help="JSONL trace destination"
    )
    trace_cmd.add_argument(
        "--export-chrome",
        metavar="FILE",
        default=None,
        help="also export the trace in Chrome trace-event JSON "
        "(open in Perfetto or chrome://tracing)",
    )
    trace_cmd.add_argument(
        "--sample",
        metavar="SPEC",
        default=None,
        help="sample the event stream: a rate ('0.01') or per-category "
        "rates ('dram=0.1,tlb=0.5,*=0.01'); keeps traced runs cheap",
    )
    trace_cmd.add_argument(
        "--sample-budget",
        metavar="SPEC",
        default=None,
        help="hard event budgets: a cap ('200000') or per-category caps "
        "('dram=50000,*=200000')",
    )

    # One subcommand per registered experiment; each spec contributes its
    # own flags, the engine contributes --jobs/--checkpoint/--resume.
    for name in experiment_names():
        spec = get_experiment(name)
        sub = commands.add_parser(name, help=spec.title)
        if spec.cli_configure:
            spec.cli_configure(sub)
        _engine_args(sub)

    snapshot_cmd = commands.add_parser(
        "snapshot", help="save, inspect, and validate machine snapshots"
    )
    snapshot_commands = snapshot_cmd.add_subparsers(
        dest="snapshot_command", required=True
    )
    snapshot_save = snapshot_commands.add_parser(
        "save", help="boot a preset machine and save its snapshot as JSON"
    )
    snapshot_save.add_argument("file", help="destination snapshot file")
    _machine_arg(snapshot_save)
    snapshot_save.add_argument("--seed", type=int, default=None)
    snapshot_save.add_argument(
        "--prepare",
        action="store_true",
        help="run the attack setup phases (spray/eviction/pairs) before "
        "snapshotting, capturing a warm post-prepare state",
    )
    snapshot_info = snapshot_commands.add_parser(
        "info", help="print a saved snapshot's header and state summary"
    )
    snapshot_info.add_argument("file", help="snapshot file to inspect")
    snapshot_load = snapshot_commands.add_parser(
        "load", help="restore a saved snapshot into a fresh machine to validate it"
    )
    snapshot_load.add_argument("file", help="snapshot file to restore")

    commands.add_parser("mitigations", help="Section V mitigation matrix")
    commands.add_parser(
        "validate", help="quick self-check: knees, pairs, and one escalation"
    )

    dash = commands.add_parser(
        "dash", help="live telemetry dashboard over an engine run's spool"
    )
    _dash_args(dash)

    runs = commands.add_parser("runs", help="inspect the run ledger")
    runs_commands = runs.add_subparsers(dest="runs_command", required=True)
    runs_list = runs_commands.add_parser("list", help="list recorded runs")
    runs_list.add_argument("--kind", default=None, help="filter by record kind")
    runs_list.add_argument("--name", default=None, help="filter by run name")
    runs_list.add_argument("--label", default=None, help="filter by baseline label")
    runs_list.add_argument("--limit", type=int, default=20, help="newest N (default 20)")
    runs_list.add_argument(
        "--all",
        action="store_true",
        help="list every record (overrides --limit; loads the whole ledger)",
    )
    runs_show = runs_commands.add_parser("show", help="show one run record")
    runs_show.add_argument("run_id", help="run id (unique prefixes accepted)")
    runs_watch = runs_commands.add_parser(
        "watch", help="watch the newest run's telemetry (alias of `repro dash`)"
    )
    _dash_args(runs_watch)
    runs_diff = runs_commands.add_parser(
        "diff", help="per-metric comparison of two runs; exit 1 on regression"
    )
    runs_diff.add_argument("before", help="baseline run id")
    runs_diff.add_argument("after", help="candidate run id")
    runs_diff.add_argument(
        "--tolerance",
        type=float,
        default=0.1,
        help="allowed fractional drift before a metric regresses (default 0.1)",
    )

    bench = commands.add_parser(
        "bench", help="quick performance suite with baseline regression gating"
    )
    bench.add_argument("--list", action="store_true", help="list suite benchmarks")
    bench.add_argument(
        "--only",
        action="append",
        metavar="NAME",
        default=None,
        help="run only this benchmark (repeatable)",
    )
    bench.add_argument(
        "--record", action="store_true", help="append results to the run ledger"
    )
    bench.add_argument(
        "--baseline",
        metavar="NAME",
        default=None,
        help="label recorded results as baseline NAME (with --record)",
    )
    bench.add_argument(
        "--compare",
        metavar="BASELINE",
        default=None,
        help="diff results against baseline BASELINE; exit 3 on regression",
    )
    bench.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="allowed fractional drift before a metric regresses (default 0.25)",
    )
    bench.add_argument(
        "--gate",
        metavar="REGEX",
        default=None,
        help="with --compare, only gate metrics whose name matches REGEX "
        "(e.g. deterministic virtual-cycle metrics in CI)",
    )

    campaign = commands.add_parser(
        "campaign",
        help="durable, supervised campaign orchestration (docs/CAMPAIGNS.md)",
    )
    campaign_commands = campaign.add_subparsers(
        dest="campaign_command", required=True
    )

    def _campaign_run_args(sub):
        sub.add_argument(
            "--jobs",
            type=int,
            default=None,
            help="override the spec's worker count for this run",
        )
        sub.add_argument(
            "--pause-after",
            type=int,
            metavar="N",
            default=None,
            help="checkpoint-and-pause once N shards are done (deterministic "
            "pause point for tests and CI)",
        )
        sub.add_argument(
            "--no-record",
            action="store_true",
            help="do not append the finished campaign to the run ledger",
        )

    campaign_submit = campaign_commands.add_parser(
        "submit", help="register a campaign spec and start running it"
    )
    campaign_submit.add_argument("spec", help="campaign spec JSON file")
    campaign_submit.add_argument(
        "--id",
        dest="campaign_id",
        default=None,
        help="campaign id (default: the spec's name)",
    )
    campaign_submit.add_argument(
        "--no-run",
        action="store_true",
        help="journal the campaign without running it (start later with "
        "`repro campaign resume`)",
    )
    _campaign_run_args(campaign_submit)
    campaign_resume = campaign_commands.add_parser(
        "resume", help="take over a created, paused, or crashed campaign"
    )
    campaign_resume.add_argument("campaign_id", help="campaign id")
    _campaign_run_args(campaign_resume)
    campaign_status = campaign_commands.add_parser(
        "status", help="show a campaign's durable state"
    )
    campaign_status.add_argument("campaign_id", help="campaign id")
    campaign_commands.add_parser("list", help="list known campaigns")
    campaign_pause = campaign_commands.add_parser(
        "pause", help="ask the live supervisor to checkpoint and pause"
    )
    campaign_pause.add_argument("campaign_id", help="campaign id")
    campaign_cancel = campaign_commands.add_parser(
        "cancel", help="cancel a campaign (terminal; cannot be resumed)"
    )
    campaign_cancel.add_argument("campaign_id", help="campaign id")
    campaign_report = campaign_commands.add_parser(
        "report", help="print a finished campaign's results summary"
    )
    campaign_report.add_argument("campaign_id", help="campaign id")

    return parser


def main(argv=None):
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "attack":
        return _cmd_attack(args)
    if args.command == "chaos":
        return _cmd_chaos(args)
    if args.command == "patterns":
        return _cmd_patterns(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command in set(experiment_names()):
        return _cmd_experiment(args)
    if args.command == "mitigations":
        return _cmd_mitigations()
    if args.command == "validate":
        return _cmd_validate()
    if args.command == "snapshot":
        return _cmd_snapshot(args)
    if args.command == "dash":
        return _cmd_dash(args)
    if args.command == "runs":
        if args.runs_command == "watch":
            return _cmd_dash(args)
        return _cmd_runs(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "campaign":
        return _cmd_campaign(args)
    return 0


def _cmd_chaos(args):
    """``repro chaos list|show`` — inspect the noise profiles."""
    from repro.chaos import CHAOS_PROFILES, chaos_profile

    if args.chaos_command == "list":
        for name in sorted(CHAOS_PROFILES):
            profile = chaos_profile(name)
            print(
                "%-10s seed=0x%x, %d sources"
                % (name, profile.seed, len(profile.sources))
            )
        return 0
    try:
        print(chaos_profile(args.profile).describe())
    except ConfigError as exc:
        print("repro: %s" % exc, file=sys.stderr)
        return 2
    return 0


def _cmd_patterns(args):
    """``repro patterns list|show`` — inspect the pattern registry."""
    import repro.patterns as patterns

    if args.patterns_command == "list":
        for name in patterns.names():
            pattern = patterns.get(name)
            ops = patterns.unroll(pattern)
            print(
                "%-16s %d role(s), %d unrolled op(s)"
                % (name, len(pattern.roles), len(ops))
            )
        return 0
    try:
        pattern = patterns.get(args.name)
    except ConfigError as exc:
        print("repro: %s" % exc, file=sys.stderr)
        return 2
    print(pattern.unparse(), end="")
    ops = patterns.unroll(pattern)
    print("# unrolled: %d op(s)" % len(ops))
    for op in ops:
        print("#   %s" % " ".join(str(part) for part in op))
    return 0


def _cmd_snapshot(args):
    """``repro snapshot save|info|load`` — machine snapshot files."""
    from repro.machine import MachineSnapshot

    try:
        if args.snapshot_command == "save":
            config = MACHINES[args.machine]()
            if args.seed is not None:
                config.seed = args.seed
            machine = Machine(config)
            process = machine.boot_process()
            meta = {"boot_pid": process.pid}
            if args.prepare:
                from repro.core.pthammer import PThammerReport

                attack = PThammerAttack(
                    AttackerView(machine, process),
                    PThammerConfig(spray_slots=256, pair_sample=12, max_pairs=12),
                )
                attack.prepare(
                    PThammerReport(machine_name=config.name, superpages=True)
                )
                meta["prepared"] = True
            snap = machine.snapshot(meta=meta)
            snap.save(args.file)
            print(
                "saved %s snapshot %s (%d cycles) to %s"
                % (config.name, snap.fingerprint(), machine.cycles, args.file)
            )
            return 0
        snap = MachineSnapshot.load(args.file)
        if args.snapshot_command == "info":
            info = snap.info()
            for key in (
                "version",
                "machine",
                "fingerprint",
                "config_fingerprint",
                "fast_path",
                "cycles",
                "processes",
                "resident_frames",
                "chaos",
            ):
                print("%-18s %s" % (key, info[key]))
            for key in sorted(info["meta"]):
                print("meta.%-13s %s" % (key, info["meta"][key]))
            return 0
        # load: the full validation path — rebuild the config from the
        # snapshot, boot a fresh machine, and restore into it.
        machine = Machine(snap.config(), fast_path=snap.fast_path)
        machine.restore(snap)
        print(
            "restored %s snapshot %s: %d cycles, %d process(es)"
            % (
                snap.machine_name,
                snap.fingerprint(),
                machine.cycles,
                len(machine.kernel.processes),
            )
        )
        return 0
    except (SnapshotError, OSError, ValueError) as exc:
        print("repro: %s" % exc, file=sys.stderr)
        return 2


def _warn_skipped_record(run_id, error):
    print("repro: warning: skipping unreadable run record %s: %s"
          % (run_id, error), file=sys.stderr)


def _cmd_runs(args):
    """``repro runs list|show|diff`` — inspect the run ledger."""
    from repro.observe import MetricsRegistry

    ledger = RunLedger()
    try:
        if args.runs_command == "list":
            limit = None if args.all else max(args.limit, 0)
            records = ledger.list(
                kind=args.kind,
                name=args.name,
                label=args.label,
                limit=limit,
                on_skip=_warn_skipped_record,
            )
            if not records:
                print("no runs recorded in %s" % ledger.root)
                return 0
            print(
                "%-22s %-10s %-14s %-12s %-20s %8s %s"
                % ("run id", "kind", "name", "machine",
                   "recorded (UTC)", "host", "label")
            )
            for record in records:
                print(record.summary_line())
            return 0
        if args.runs_command == "show":
            record = ledger.load(args.run_id)
            print("run      %s" % record.run_id)
            print("kind     %s  name %s" % (record.kind, record.name))
            print("recorded %s" % record.created_utc)
            for field_name in ("label", "git_rev", "machine", "config_fingerprint", "command"):
                value = getattr(record, field_name)
                if value:
                    print("%-8s %s" % (field_name.replace("_", " "), value))
            for key in sorted(record.timings):
                print("timing   %-24s %s" % (key, record.timings[key]))
            for phase in record.phases:
                print(
                    "phase    %-24s %12d cycles" % (phase["name"], phase["cycles"])
                )
            for key in sorted(record.outcome):
                print("outcome  %-24s %s" % (key, record.outcome[key]))
            if record.metrics:
                registry = MetricsRegistry()
                registry.merge_snapshot(record.metrics)
                print("metrics:")
                for line in registry.render().splitlines():
                    print("  " + line)
            telemetry = (record.extra or {}).get("telemetry")
            if telemetry:
                from repro.analysis.telemetry import render_timeline

                print("timeline:")
                for line in render_timeline(telemetry).splitlines():
                    print("  " + line)
            return 0
        if args.runs_command == "diff":
            diff = diff_records(
                ledger.load(args.before),
                ledger.load(args.after),
                tolerance=args.tolerance,
            )
            print(diff.render())
            return 1 if diff.regressions() else 0
    except ConfigError as exc:
        print("repro: %s" % exc, file=sys.stderr)
        return 2
    return 0


def _run_campaign_supervisor(campaign, args):
    """Drive a campaign and translate its final state to an exit code.

    0 — completed, paused, or a clean cancel; 4 — completed but
    ``degraded`` (quarantined shards; see the printed report path), so
    CI can tell "finished with casualties" from "fine" and from the
    configuration errors that exit 2.
    """
    from repro.campaign import DEGRADED, Supervisor

    supervisor = Supervisor(
        campaign, jobs=args.jobs, pause_after=args.pause_after
    )
    state = supervisor.run(no_record=args.no_record)
    print("campaign %s: %s" % (campaign.id, state))
    if state == DEGRADED:
        print(
            "quarantine report: %s" % campaign.quarantine_path, file=sys.stderr
        )
        return 4
    return 0


def _cmd_campaign(args):
    """``repro campaign ...`` — the durable orchestrator's control CLI."""
    import os

    from repro.campaign import Campaign, CampaignSpec, campaigns_root

    try:
        if args.campaign_command == "submit":
            spec = CampaignSpec.from_file(args.spec)
            campaign = Campaign.create(spec, campaign_id=args.campaign_id)
            print("campaign %s created (%d shard(s), fingerprint %s)"
                  % (campaign.id, len(spec.compile_plan().shards),
                     spec.fingerprint()))
            if args.no_run:
                return 0
            return _run_campaign_supervisor(campaign, args)
        if args.campaign_command == "resume":
            campaign = Campaign.open(args.campaign_id)
            return _run_campaign_supervisor(campaign, args)
        if args.campaign_command == "status":
            status = Campaign.open(args.campaign_id).status()
            print("campaign %s: %s" % (status["id"], status["state"]))
            print("  shards   %d/%d done, %d quarantined, %d failed attempt(s)"
                  % (status["shards_done"], status["shards_total"],
                     status["shards_quarantined"], status["failed_attempts"]))
            print("  cells    %d/%d done"
                  % (status["cells_done"], status["cells_total"]))
            print("  jobs     %d" % status["jobs"])
            supervisor_note = "none"
            if status["supervisor_pid"]:
                supervisor_note = "pid %d (%s)" % (
                    status["supervisor_pid"],
                    "alive" if status["supervisor_alive"] else "gone",
                )
            print("  supervisor %s | journal events %d"
                  % (supervisor_note, status["events"]))
            return 0
        if args.campaign_command == "list":
            ids = Campaign.list()
            if not ids:
                print("no campaigns under %s" % campaigns_root())
                return 0
            for campaign_id in ids:
                status = Campaign.open(campaign_id).status()
                print("%-24s %-10s %d/%d done, %d quarantined"
                      % (campaign_id, status["state"], status["shards_done"],
                         status["shards_total"], status["shards_quarantined"]))
            return 0
        if args.campaign_command in ("pause", "cancel"):
            campaign = Campaign.open(args.campaign_id)
            verdict = campaign.request(args.campaign_command)
            print("campaign %s: %s %s"
                  % (campaign.id, args.campaign_command, verdict))
            return 0
        if args.campaign_command == "report":
            import json as _json

            campaign = Campaign.open(args.campaign_id)
            if not os.path.exists(campaign.results_path):
                status = campaign.status()
                print("repro: campaign %s has no results yet (state: %s)"
                      % (campaign.id, status["state"]), file=sys.stderr)
                return 2
            with open(campaign.results_path, "r", encoding="utf-8") as handle:
                document = _json.load(handle)
            totals = document["totals"]
            print("campaign %s: %s (fingerprint %s)"
                  % (campaign.id, document["state"], document["fingerprint"]))
            print("  %d shard(s): %d done, %d quarantined, %d flip(s)"
                  % (totals["shards"], totals["done"],
                     totals["quarantined"], totals["flips"]))
            for cell in document["cells"]:
                print("  %-40s %d done, %d quarantined"
                      % (cell["key"], cell["done"], cell["quarantined"]))
            if document["state"] == "degraded":
                print("quarantine report: %s"
                      % campaign.quarantine_path, file=sys.stderr)
            return 0
    except (CampaignError, ConfigError) as exc:
        print("repro: %s" % exc, file=sys.stderr)
        return 2
    return 0


def _cmd_bench(args):
    """``repro bench`` — run the quick suite; record and/or gate it."""
    from repro.analysis.bench import (
        DEFAULT_TOLERANCE,
        bench_names,
        compare_to_baseline,
        get_bench,
        run_bench,
    )

    try:
        if args.list:
            for name in bench_names():
                print("%-18s %s" % (name, get_bench(name).title))
            return 0
        names = list(args.only) if args.only else bench_names()
        for name in names:
            get_bench(name)  # unknown names fail before any work runs
        ledger = RunLedger()
        results = []
        for name in names:
            print("bench %s ..." % name, file=sys.stderr)
            result = run_bench(name)
            results.append(result)
            print(result.summary_line())
        if args.record:
            for result in results:
                record = result.to_record(label=args.baseline)
                ledger.record(record)
                print(
                    "recorded %s as %s%s"
                    % (
                        result.name,
                        record.run_id,
                        " (baseline %s)" % args.baseline if args.baseline else "",
                    ),
                    file=sys.stderr,
                )
        if args.compare is not None:
            tolerance = (
                args.tolerance if args.tolerance is not None else DEFAULT_TOLERANCE
            )
            comparison = compare_to_baseline(
                ledger, args.compare, results, tolerance=tolerance, gate=args.gate
            )
            # Human-readable diff table on stderr; stdout carries only
            # the stable tab-separated rows a pipeline can parse.
            print(comparison.render(), file=sys.stderr)
            for line in comparison.machine_lines():
                print(line)
            if not comparison.diffs:
                # Comparing against nothing would otherwise "pass": make
                # a wholly absent baseline loud (CI typo, unseeded ledger).
                print(
                    "repro: baseline %r has no record for any selected "
                    "benchmark in %s — run `repro bench --record --baseline "
                    "%s` first" % (args.compare, ledger.root, args.compare),
                    file=sys.stderr,
                )
                return 2
            if comparison.regressions():
                return 3
    except ConfigError as exc:
        print("repro: %s" % exc, file=sys.stderr)
        return 2
    return 0


def _cmd_trace(args):
    """Run one traced attack; print the profile, optionally export JSONL."""
    from repro.analysis import profile_trace, write_chrome_trace, write_trace_jsonl
    from repro.observe import parse_budget_spec, parse_rate_spec

    config = MACHINES[args.machine]()
    if args.seed is not None:
        config.seed = args.seed
    out_file = _open_trace_destination(args.out)
    machine = Machine(config, policy=DEFENSES[args.defense]())
    attacker = AttackerView(machine, machine.boot_process())
    machine.trace.enable()
    if args.sample or args.sample_budget:
        try:
            rates = parse_rate_spec(args.sample) if args.sample else None
            budgets = (
                parse_budget_spec(args.sample_budget) if args.sample_budget else None
            )
        except ValueError as exc:
            print("error: %s" % exc, file=sys.stderr)
            return 2
        machine.trace.set_sampling(rates=rates, budgets=budgets)
    print("tracing PThammer vs %s (defense: %s) ..." % (config.name, args.defense))
    report = PThammerAttack(
        attacker,
        PThammerConfig(
            spray_slots=args.slots, pair_sample=args.pairs, max_pairs=args.pairs
        ),
    ).run()
    print(report.summary())
    print()
    print(
        profile_trace(
            machine.trace, machine=config.name, freq_ghz=config.cpu.freq_ghz
        ).render()
    )
    counts = machine.trace.counts_by_kind()
    print()
    print("events by kind:")
    for kind in sorted(counts):
        print("  %-16s %10d" % (kind, counts[kind]))
    if machine.trace.dropped:
        print("  (%d events dropped beyond the buffer limit)" % machine.trace.dropped)
    if machine.trace.sampler is not None:
        stats = machine.trace.sampler.stats()
        print(
            "sampling: kept %d of %d event(s) (%d sampled out, %d over budget)"
            % (stats["kept"], stats["seen"], stats["sampled_out"],
               stats["budget_dropped"])
        )
    if out_file is not None:
        with out_file:
            lines = write_trace_jsonl(machine.trace, out_file, machine=config.name)
        print("wrote %d trace lines to %s" % (lines, args.out))
    if args.export_chrome:
        events = write_chrome_trace(
            machine.trace,
            args.export_chrome,
            machine=config.name,
            freq_ghz=config.cpu.freq_ghz,
        )
        print("wrote %d chrome trace event(s) to %s" % (events, args.export_chrome))
    return 0


def _cmd_validate():
    """Fast end-to-end self-check of the reproduction's key shapes."""
    from repro.core.tlb_eviction import TLBEvictionSetBuilder, tlb_miss_rate_by_size
    from repro.core.llc_offline import llc_miss_rate_by_size
    from repro.core.uarch import UarchFacts

    failures = []

    def check(name, condition, detail=""):
        status = "ok" if condition else "FAIL"
        print("  [%4s] %s %s" % (status, name, detail))
        if not condition:
            failures.append(name)

    print("validating eviction-set knees ...")
    config = tiny_test_config()
    machine = Machine(config)
    attacker = AttackerView(machine, machine.boot_process())
    inspector = Inspector(machine)
    facts = UarchFacts.from_config(config)
    builder = TLBEvictionSetBuilder(attacker, facts)
    tlb = tlb_miss_rate_by_size(attacker, inspector, builder, (8, 12), trials=50)
    check("fig3: 12-page TLB sets evict", tlb[12] >= 0.85, "%.2f" % tlb[12])
    check("fig3: 8-page sets degrade", tlb[8] < tlb[12], "%.2f" % tlb[8])
    llc = llc_miss_rate_by_size(
        attacker, inspector, facts, (facts.llc_ways - 2, facts.llc_ways + 1), trials=50
    )
    check(
        "fig4: assoc+1 LLC sets evict",
        llc[facts.llc_ways + 1] >= 0.85,
        "%.2f" % llc[facts.llc_ways + 1],
    )

    print("validating pair construction ...")
    pairs = run_experiment(
        "sec4d",
        {"config_fn": lambda: tiny_test_config(), "sample": 10, "spray_slots": 256},
    ).result
    check("sec4d: slow pairs same-bank", pairs.slow_same_bank_rate >= 0.8)

    print("validating escalation (one seed) ...")
    machine = Machine(tiny_test_config(seed=1))
    attacker = AttackerView(machine, machine.boot_process())
    report = PThammerAttack(
        attacker, PThammerConfig(spray_slots=256, pair_sample=16, max_pairs=14)
    ).run()
    check("sec4f: flips observed", report.total_flips > 0)
    check("sec4f: escalated to root", report.escalated and attacker.getuid() == 0)

    print("%d checks failed" % len(failures) if failures else "all checks passed")
    return 1 if failures else 0


def _cmd_mitigations():
    """The Section-V mitigation matrix (ANVIL/TRR)."""
    from repro.core import RowhammerTestTool, UarchFacts
    from repro.defenses import AnvilDetector

    def pthammer(monitor=None, trr=0):
        config = tiny_test_config(seed=1)
        config.dram.trr_threshold = trr
        machine = Machine(config)
        attacker = AttackerView(machine, machine.boot_process())
        if monitor:
            machine.attach_monitor(monitor(machine))
        PThammerAttack(
            attacker, PThammerConfig(spray_slots=256, pair_sample=12, max_pairs=6)
        ).run()
        return Inspector(machine).flip_count()

    def explicit(monitor=None):
        machine = Machine(tiny_test_config(seed=4))
        attacker = AttackerView(machine, machine.boot_process())
        if monitor:
            machine.attach_monitor(monitor(machine))
        tool = RowhammerTestTool(
            attacker, Inspector(machine),
            UarchFacts.from_config(machine.config), buffer_pages=256,
        )
        tool.time_to_first_flip(0, 6 * machine.config.dram.refresh_interval_cycles)
        return Inspector(machine).flip_count()

    rows = [
        ("explicit", "none", explicit()),
        ("explicit", "ANVIL (loads)", explicit(lambda m: AnvilDetector(m))),
        ("pthammer", "none", pthammer()),
        ("pthammer", "ANVIL (loads)", pthammer(lambda m: AnvilDetector(m))),
        ("pthammer", "ANVIL (loads+walks)",
         pthammer(lambda m: AnvilDetector(m, watch_walks=True))),
        ("pthammer", "TRR counter", pthammer(trr=150)),
    ]
    from repro.analysis import render_table

    print(render_table(["attack", "mitigation", "ground-truth flips"], rows,
                       title="Section V mitigations"))
    return 0


if __name__ == "__main__":
    sys.exit(main())
