"""Command-line interface: run the attack and regenerate experiments.

Examples::

    python -m repro attack --machine t420-scaled
    python -m repro attack --machine tiny --defense catt --slots 1000
    python -m repro table1
    python -m repro figure3 --trials 60
    python -m repro figure5 --machine t420-scaled
    python -m repro defenses
    python -m repro mitigations
"""

import argparse
import sys
import time

from repro.analysis import (
    figure3,
    figure4,
    figure5,
    figure6,
    run_escalation,
    section_4c_selection,
    section_4d_pairs,
    table1,
    table2,
)
from repro.core.pthammer import PThammerAttack, PThammerConfig
from repro.defenses import (
    CATTPolicy,
    CTAPolicy,
    RIPRHPolicy,
    StockPolicy,
    ZebRAMPolicy,
)
from repro.machine import AttackerView, Inspector, Machine
from repro.machine.configs import (
    dell_e6420,
    dell_e6420_scaled,
    lenovo_t420,
    lenovo_t420_scaled,
    lenovo_x230,
    lenovo_x230_scaled,
    tiny_test_config,
)

MACHINES = {
    "tiny": tiny_test_config,
    "t420-scaled": lenovo_t420_scaled,
    "x230-scaled": lenovo_x230_scaled,
    "e6420-scaled": dell_e6420_scaled,
    "t420": lenovo_t420,
    "x230": lenovo_x230,
    "e6420": dell_e6420,
}

DEFENSES = {
    "none": lambda: StockPolicy(),
    "catt": lambda: CATTPolicy(kernel_fraction=0.1),
    "rip-rh": lambda: RIPRHPolicy(kernel_fraction=0.1),
    "cta": lambda: CTAPolicy(),
    "zebram": lambda: ZebRAMPolicy(),
}


def _machine_arg(parser, default="tiny"):
    parser.add_argument(
        "--machine",
        choices=sorted(MACHINES),
        default=default,
        help="machine preset (default: %(default)s)",
    )


def _cmd_attack(args):
    config = MACHINES[args.machine]()
    if args.seed is not None:
        config.seed = args.seed
    policy = DEFENSES[args.defense]()
    machine = Machine(config, policy=policy)
    attacker = AttackerView(machine, machine.boot_process())
    attack_config = PThammerConfig(
        superpages=not args.regular_pages,
        spray_slots=args.slots,
        pair_sample=args.pairs,
        max_pairs=args.pairs,
        cred_spray_processes=args.cred_spray,
    )
    profiling = getattr(args, "profile", False)
    trace_path = getattr(args, "trace", None)
    trace_file = _open_trace_destination(trace_path)
    if profiling or trace_path:
        machine.trace.enable()
    print(
        "PThammer vs %s (defense: %s); attacker uid=%d"
        % (config.name, args.defense, attacker.getuid())
    )
    started = time.time()
    report = PThammerAttack(attacker, attack_config).run()
    print(report.summary())
    if report.outcome:
        for note in report.outcome.details:
            print("  - %s" % note)
    print(
        "uid after attack: %d | ground-truth flips: %d | host %.1fs"
        % (attacker.getuid(), Inspector(machine).flip_count(), time.time() - started)
    )
    if profiling:
        from repro.analysis import profile_trace

        print()
        print(
            profile_trace(
                machine.trace, machine=config.name, freq_ghz=config.cpu.freq_ghz
            ).render()
        )
    if trace_file is not None:
        from repro.analysis import write_trace_jsonl

        with trace_file:
            lines = write_trace_jsonl(machine.trace, trace_file, machine=config.name)
        print("wrote %d trace lines to %s" % (lines, trace_path))
    return 0 if report.escalated == (args.defense not in ("zebram",)) else 1


def _open_trace_destination(path):
    """Open a JSONL destination up-front, before the attack runs.

    A bad path should fail in milliseconds, not after a multi-minute
    attack has already completed.
    """
    if path is None:
        return None
    try:
        return open(path, "w")
    except OSError as exc:
        raise SystemExit("repro: cannot write trace file %s: %s" % (path, exc))


def _cmd_render(result):
    print(result.render())
    return 0


def main(argv=None):
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro", description="PThammer reproduction experiments"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    attack = commands.add_parser("attack", help="run the end-to-end attack")
    _machine_arg(attack)
    attack.add_argument("--defense", choices=sorted(DEFENSES), default="none")
    attack.add_argument("--slots", type=int, default=256, help="spray slots")
    attack.add_argument("--pairs", type=int, default=12, help="pairs to hammer")
    attack.add_argument("--seed", type=int, default=None)
    attack.add_argument("--cred-spray", type=int, default=0)
    attack.add_argument(
        "--regular-pages",
        action="store_true",
        help="use the regular-page setting instead of superpages",
    )
    attack.add_argument(
        "--profile",
        action="store_true",
        help="enable tracing and print the per-phase cycle breakdown",
    )
    attack.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="enable tracing and write the JSONL trace to FILE",
    )

    trace_cmd = commands.add_parser(
        "trace", help="run the attack with tracing on; export and profile it"
    )
    _machine_arg(trace_cmd)
    trace_cmd.add_argument("--defense", choices=sorted(DEFENSES), default="none")
    trace_cmd.add_argument("--slots", type=int, default=256, help="spray slots")
    trace_cmd.add_argument("--pairs", type=int, default=12, help="pairs to hammer")
    trace_cmd.add_argument("--seed", type=int, default=None)
    trace_cmd.add_argument(
        "--out", metavar="FILE", default=None, help="JSONL trace destination"
    )

    commands.add_parser("table1", help="Table I: machine configurations")

    fig3 = commands.add_parser("figure3", help="TLB eviction-set sweep")
    fig3.add_argument("--trials", type=int, default=60)

    fig4 = commands.add_parser("figure4", help="LLC eviction-set sweep")
    fig4.add_argument("--trials", type=int, default=60)

    table2_cmd = commands.add_parser("table2", help="attack phase costs")
    table2_cmd.add_argument("--slots", type=int, default=384)

    fig5 = commands.add_parser("figure5", help="hammer-budget cliff")
    _machine_arg(fig5, default="t420-scaled")

    fig6 = commands.add_parser("figure6", help="per-round cycle distribution")
    _machine_arg(fig6, default="t420-scaled")
    fig6.add_argument("--regular-pages", action="store_true")

    sec4c = commands.add_parser("sec4c", help="Algorithm-2 false positives")
    _machine_arg(sec4c, default="t420-scaled")

    sec4d = commands.add_parser("sec4d", help="pair-construction hit rates")
    _machine_arg(sec4d, default="t420-scaled")

    commands.add_parser("defenses", help="Sections IV-G/V defense matrix")
    commands.add_parser("mitigations", help="Section V mitigation matrix")
    commands.add_parser(
        "validate", help="quick self-check: knees, pairs, and one escalation"
    )

    args = parser.parse_args(argv)

    if args.command == "attack":
        return _cmd_attack(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "table1":
        return _cmd_render(table1())
    if args.command == "figure3":
        return _cmd_render(figure3(trials=args.trials))
    if args.command == "figure4":
        return _cmd_render(figure4(trials=args.trials))
    if args.command == "table2":
        return _cmd_render(
            table2(attack_config=PThammerConfig(spray_slots=args.slots, max_pairs=8))
        )
    if args.command == "figure5":
        return _cmd_render(figure5(MACHINES[args.machine], buffer_pages=256))
    if args.command == "figure6":
        return _cmd_render(
            figure6(MACHINES[args.machine], superpages=not args.regular_pages)
        )
    if args.command == "sec4c":
        return _cmd_render(section_4c_selection(MACHINES[args.machine]))
    if args.command == "sec4d":
        return _cmd_render(section_4d_pairs(MACHINES[args.machine]))
    if args.command == "defenses":
        return _cmd_defenses()
    if args.command == "mitigations":
        return _cmd_mitigations()
    if args.command == "validate":
        return _cmd_validate()
    return 0


def _cmd_trace(args):
    """Run one traced attack; print the profile, optionally export JSONL."""
    from repro.analysis import profile_trace, write_trace_jsonl

    config = MACHINES[args.machine]()
    if args.seed is not None:
        config.seed = args.seed
    out_file = _open_trace_destination(args.out)
    machine = Machine(config, policy=DEFENSES[args.defense]())
    attacker = AttackerView(machine, machine.boot_process())
    machine.trace.enable()
    print("tracing PThammer vs %s (defense: %s) ..." % (config.name, args.defense))
    report = PThammerAttack(
        attacker,
        PThammerConfig(
            spray_slots=args.slots, pair_sample=args.pairs, max_pairs=args.pairs
        ),
    ).run()
    print(report.summary())
    print()
    print(
        profile_trace(
            machine.trace, machine=config.name, freq_ghz=config.cpu.freq_ghz
        ).render()
    )
    counts = machine.trace.counts_by_kind()
    print()
    print("events by kind:")
    for kind in sorted(counts):
        print("  %-16s %10d" % (kind, counts[kind]))
    if machine.trace.dropped:
        print("  (%d events dropped beyond the buffer limit)" % machine.trace.dropped)
    if out_file is not None:
        with out_file:
            lines = write_trace_jsonl(machine.trace, out_file, machine=config.name)
        print("wrote %d trace lines to %s" % (lines, args.out))
    return 0


def _cmd_validate():
    """Fast end-to-end self-check of the reproduction's key shapes."""
    from repro.analysis import section_4d_pairs
    from repro.core.tlb_eviction import TLBEvictionSetBuilder, tlb_miss_rate_by_size
    from repro.core.llc_offline import llc_miss_rate_by_size
    from repro.core.uarch import UarchFacts

    failures = []

    def check(name, condition, detail=""):
        status = "ok" if condition else "FAIL"
        print("  [%4s] %s %s" % (status, name, detail))
        if not condition:
            failures.append(name)

    print("validating eviction-set knees ...")
    config = tiny_test_config()
    machine = Machine(config)
    attacker = AttackerView(machine, machine.boot_process())
    inspector = Inspector(machine)
    facts = UarchFacts.from_config(config)
    builder = TLBEvictionSetBuilder(attacker, facts)
    tlb = tlb_miss_rate_by_size(attacker, inspector, builder, (8, 12), trials=50)
    check("fig3: 12-page TLB sets evict", tlb[12] >= 0.85, "%.2f" % tlb[12])
    check("fig3: 8-page sets degrade", tlb[8] < tlb[12], "%.2f" % tlb[8])
    llc = llc_miss_rate_by_size(
        attacker, inspector, facts, (facts.llc_ways - 2, facts.llc_ways + 1), trials=50
    )
    check(
        "fig4: assoc+1 LLC sets evict",
        llc[facts.llc_ways + 1] >= 0.85,
        "%.2f" % llc[facts.llc_ways + 1],
    )

    print("validating pair construction ...")
    pairs = section_4d_pairs(lambda: tiny_test_config(), sample=10, spray_slots=256)
    check("sec4d: slow pairs same-bank", pairs.slow_same_bank_rate >= 0.8)

    print("validating escalation (one seed) ...")
    machine = Machine(tiny_test_config(seed=1))
    attacker = AttackerView(machine, machine.boot_process())
    report = PThammerAttack(
        attacker, PThammerConfig(spray_slots=256, pair_sample=16, max_pairs=14)
    ).run()
    check("sec4f: flips observed", report.total_flips > 0)
    check("sec4f: escalated to root", report.escalated and attacker.getuid() == 0)

    print("%d checks failed" % len(failures) if failures else "all checks passed")
    return 1 if failures else 0


def _cmd_defenses():
    """The Sections IV-G/V matrix (canonical runner in repro.analysis)."""
    from repro.analysis.experiments import section_4g_defenses

    print("running the five-defense matrix (a few minutes) ...", flush=True)
    print(section_4g_defenses().render())
    return 0


def _cmd_mitigations():
    """The Section-V mitigation matrix (ANVIL/TRR)."""
    from repro.core import RowhammerTestTool, UarchFacts
    from repro.defenses import AnvilDetector

    def pthammer(monitor=None, trr=0):
        config = tiny_test_config(seed=1)
        config.dram.trr_threshold = trr
        machine = Machine(config)
        attacker = AttackerView(machine, machine.boot_process())
        if monitor:
            machine.attach_monitor(monitor(machine))
        PThammerAttack(
            attacker, PThammerConfig(spray_slots=256, pair_sample=12, max_pairs=6)
        ).run()
        return Inspector(machine).flip_count()

    def explicit(monitor=None):
        machine = Machine(tiny_test_config(seed=4))
        attacker = AttackerView(machine, machine.boot_process())
        if monitor:
            machine.attach_monitor(monitor(machine))
        tool = RowhammerTestTool(
            attacker, Inspector(machine),
            UarchFacts.from_config(machine.config), buffer_pages=256,
        )
        tool.time_to_first_flip(0, 6 * machine.config.dram.refresh_interval_cycles)
        return Inspector(machine).flip_count()

    rows = [
        ("explicit", "none", explicit()),
        ("explicit", "ANVIL (loads)", explicit(lambda m: AnvilDetector(m))),
        ("pthammer", "none", pthammer()),
        ("pthammer", "ANVIL (loads)", pthammer(lambda m: AnvilDetector(m))),
        ("pthammer", "ANVIL (loads+walks)",
         pthammer(lambda m: AnvilDetector(m, watch_walks=True))),
        ("pthammer", "TRR counter", pthammer(trr=150)),
    ]
    from repro.analysis import render_table

    print(render_table(["attack", "mitigation", "ground-truth flips"], rows,
                       title="Section V mitigations"))
    return 0


if __name__ == "__main__":
    sys.exit(main())
