"""LLC eviction sets: minimal-size search and the complete pool.

Three pieces, mirroring Section III-D:

* **Offline minimal size** (needs the evaluation kernel module):
  measure the eviction rate of physically-congruent line sets of
  decreasing size; the paper settles on associativity + 1 (13 lines on
  the Lenovos, 17 on the Dell).  This also generates Figure 4.

* **Pool preparation** (attack-side, timing only): partition a buffer
  twice the LLC size into one minimal eviction set per (cache set,
  slice).  With superpages, physical bits 0-20 leak through the shared
  VA bits, so the set index is known and only the slice must be found
  by conflict testing (Liu et al.) — fast.  With 4 KiB pages only bits
  6-11 are known, so each page-offset class mixes ``sets_per_slice/64``
  set classes times ``slices`` slices and the grouping does far more
  timing work (Genkin et al.) — the paper's 18-38 minutes vs 0.3.

* Set reduction uses Vila-style group testing: drop whole chunks whose
  removal keeps the set evicting, falling back to single-line removal.

The pool's index is the *line offset within a page* (bits 6-11): an
L1PTE's page offset is computable from its virtual address alone, and
Oren et al.'s observation guarantees offset-congruent pages cover the
same cache sets — exactly how Algorithm 2 shortlists candidate sets.
"""

from repro.core.layout import LLC_BUFFER_REGION
from repro.core.timing_probe import fenced_timed_read
from repro.params import LINE_SIZE, PAGE_SIZE, SUPERPAGE_SIZE


class EvictionSet:
    """A minimal set of lines mapping to one (cache set, slice)."""

    __slots__ = ("lines", "line_offset", "set_index")

    def __init__(self, lines, line_offset, set_index=None):
        self.lines = lines
        #: Line offset within a 4 KiB page (0..63), the pool index key.
        self.line_offset = line_offset
        #: Set index within a slice when known (superpage path), else None.
        self.set_index = set_index

    def __len__(self):
        return len(self.lines)

    def __repr__(self):
        return "EvictionSet(offset=%d, set=%s, lines=%d)" % (
            self.line_offset,
            self.set_index,
            len(self.lines),
        )


class LLCEvictionPool:
    """The one-off pool: eviction sets indexed by page line-offset."""

    def __init__(self, sets, prep_cycles, superpages):
        self._by_offset = {}
        for eviction_set in sets:
            self._by_offset.setdefault(eviction_set.line_offset, []).append(
                eviction_set
            )
        self.prep_cycles = prep_cycles
        self.superpages = superpages

    def sets_for_offset(self, line_offset):
        """All pool sets whose lines share a page line-offset."""
        return list(self._by_offset.get(line_offset, []))

    def offsets(self):
        """Line offsets the pool covers."""
        return sorted(self._by_offset)

    def set_count(self):
        """Total eviction sets in the pool."""
        return sum(len(sets) for sets in self._by_offset.values())

    def replace_offset(self, line_offset, sets):
        """Swap in freshly built sets for one line offset.

        The self-healing path: when a chosen set stops evicting its
        target (its backing lines were disturbed by system noise), the
        pipeline rebuilds just that offset's sets and replaces the
        stale ones here.
        """
        self._by_offset[line_offset] = list(sets)


# ----------------------------------------------------------------------
# conflict testing and reduction (attack-side, timing only)


def sweep(attacker, lines):
    """Access every line of an eviction set in sequence.

    Sequential order suffices for high eviction rates here, matching
    the paper's note that Gruss-style fancy access patterns were not
    needed.  Issued as one :meth:`~repro.machine.attacker.AttackerView.
    touch_many` batch so the machine's fast path amortises the sweep.
    """
    attacker.touch_many(lines)


def evicts(attacker, threshold, probe_va, lines, trials=3):
    """Timing conflict test: does sweeping ``lines`` evict ``probe_va``?

    The candidate set is swept twice per trial: on inclusive LLCs the
    second pass is nearly free (hits), while on non-inclusive designs
    it is what pushes the probe's line out of the victim LLC after the
    first pass displaced it from L2 (Section V, hardware variations).
    """
    votes = 0
    for _ in range(trials):
        attacker.touch(probe_va)
        sweep(attacker, lines)
        sweep(attacker, lines)
        if threshold.is_dram(fenced_timed_read(attacker, probe_va)):
            votes += 1
    return votes * 2 > trials


def reduce_to_minimal(attacker, threshold, probe_va, candidates, target_size):
    """Vila-style group-testing reduction of an eviction set.

    Shrinks ``candidates`` (which must evict the probe) to
    ``target_size`` lines that still evict it; returns None when the
    candidates stop evicting (not enough congruent lines present).
    """
    working = list(candidates)
    if not evicts(attacker, threshold, probe_va, working):
        return None
    while len(working) > target_size:
        chunks = _split(working, target_size + 1)
        for chunk in chunks:
            if len(working) - len(chunk) < target_size:
                continue
            trimmed = [va for va in working if va not in chunk]
            if evicts(attacker, threshold, probe_va, trimmed):
                working = trimmed
                break
        else:
            # Group testing stalled (noise); fall back to single removal.
            for va in list(working):
                trimmed = [x for x in working if x != va]
                if evicts(attacker, threshold, probe_va, trimmed):
                    working = trimmed
                    break
            else:
                return None
    return working


def _split(items, parts):
    """Split a list into ``parts`` nearly-equal chunks."""
    size = max(1, len(items) // parts)
    return [items[i : i + size] for i in range(0, len(items), size)]


# ----------------------------------------------------------------------
# pool preparation


class LLCPoolBuilder:
    """Builds the complete (or offset-restricted) eviction-set pool.

    ``guard`` is an optional hook wrapping each bounded unit of timing
    work (one probe's coverage check or reduction): the self-healing
    pipeline passes a retry-with-backoff wrapper so a recoverable fault
    costs one unit, not the whole multi-minute preparation.  ``None``
    (the default) runs everything plainly.
    """

    def __init__(self, attacker, facts, threshold, set_size, guard=None):
        self.attacker = attacker
        self.facts = facts
        self.threshold = threshold
        self.set_size = set_size
        self._guard = guard if guard is not None else lambda operation: operation()
        self._region_cursor = LLC_BUFFER_REGION

    def _claim_region(self, length):
        """Reserve a superpage-aligned VA range for a buffer."""
        base = self._region_cursor
        span = -(-length // SUPERPAGE_SIZE) * SUPERPAGE_SIZE
        self._region_cursor = base + span + SUPERPAGE_SIZE
        return base

    def prepare(self, superpages=True, line_offsets=None):
        """Build the pool (Table II's "LLC preparation" phase).

        ``line_offsets`` restricts preparation to the given page
        offsets — the lazy mode used when the attacker already knows
        which offsets its target L1PTEs use; ``None`` builds all 64.
        """
        start = self.attacker.rdtsc()
        if line_offsets is None:
            line_offsets = range(PAGE_SIZE // LINE_SIZE)
        wanted = set(line_offsets)
        if superpages:
            sets = self._prepare_superpage(wanted)
        else:
            sets = self._prepare_regular(wanted)
        return LLCEvictionPool(sets, self.attacker.rdtsc() - start, superpages)

    def rebuild_offset(self, superpages, line_offset):
        """Re-run preparation for a single line offset in a fresh buffer.

        Recovery primitive: returns new :class:`EvictionSet` objects
        for ``line_offset`` (possibly empty if the timing is too noisy
        to partition), leaving the existing pool untouched — the caller
        decides whether to :meth:`LLCEvictionPool.replace_offset`.
        """
        wanted = {line_offset}
        if superpages:
            return self._prepare_superpage(wanted)
        return self._prepare_regular(wanted)

    # -- superpage path (Liu et al.): set index known, find slices ------

    def _prepare_superpage(self, wanted_offsets):
        facts = self.facts
        buffer_bytes = 2 * facts.llc_bytes
        n_super = max(1, -(-buffer_bytes // SUPERPAGE_SIZE))
        base = self.attacker.mmap(
            n_super,
            at=self._claim_region(n_super * SUPERPAGE_SIZE),
            huge=True,
            populate=True,
        )
        sets = []
        sets_per_slice = facts.llc_sets_per_slice
        lines_per_super = SUPERPAGE_SIZE // LINE_SIZE
        # A buffer twice the LLC size provides ~2 x ways x slices lines
        # per set index; more candidates only slow the reduction down.
        per_group = 2 * facts.llc_ways * facts.llc_slices
        for set_index in range(sets_per_slice):
            if (set_index % (PAGE_SIZE // LINE_SIZE)) not in wanted_offsets:
                continue
            candidates = []
            for sp in range(n_super):
                sp_base = base + sp * SUPERPAGE_SIZE
                # Bits 0-20 of VA equal bits 0-20 of PA: every line whose
                # VA-derived set index matches is physically in this set.
                for line in range(set_index, lines_per_super, sets_per_slice):
                    candidates.append(sp_base + line * LINE_SIZE)
                    if len(candidates) >= per_group:
                        break
                if len(candidates) >= per_group:
                    break
            sets.extend(
                self._partition_group(candidates, set_index, expected=facts.llc_slices)
            )
        return sets

    # -- regular path (Genkin et al.): only bits 6-11 known --------------

    def _prepare_regular(self, wanted_offsets):
        facts = self.facts
        buffer_bytes = 2 * facts.llc_bytes
        npages = buffer_bytes // PAGE_SIZE
        base = self.attacker.mmap(
            npages, at=self._claim_region(npages * PAGE_SIZE), populate=True
        )
        sets = []
        set_classes = max(1, facts.llc_sets_per_slice // (PAGE_SIZE // LINE_SIZE))
        expected = set_classes * facts.llc_slices
        for offset in sorted(wanted_offsets):
            candidates = [
                base + page * PAGE_SIZE + offset * LINE_SIZE
                for page in range(npages)
            ]
            sets.extend(
                self._partition_group(candidates, None, offset, expected=expected)
            )
        return sets

    # -- shared partition logic ------------------------------------------

    def _partition_group(self, candidates, set_index, offset=None, expected=None):
        """Split congruence candidates into per-(set, slice) minimal sets.

        ``expected`` is how many distinct (set, slice) combinations the
        group spans; probes already covered by a found set are skipped
        so each combination yields exactly one pool entry.
        """
        if offset is None:
            offset = (candidates[0] >> 6) & (PAGE_SIZE // LINE_SIZE - 1)
        found = []
        pool = list(candidates)
        misfires = 0
        while len(pool) > self.set_size and misfires < 4:
            if expected is not None and len(found) >= expected:
                break
            probe = pool.pop(0)
            if self._guard(
                lambda probe=probe: any(
                    evicts(self.attacker, self.threshold, probe, done.lines)
                    for done in found
                )
            ):
                continue  # probe's (set, slice) already has a pool entry
            reduced = self._guard(
                lambda probe=probe, pool=pool: reduce_to_minimal(
                    self.attacker, self.threshold, probe, pool, self.set_size
                )
            )
            if reduced is None:
                # Not enough lines of the probe's (set, slice) remain.
                misfires += 1
                continue
            found.append(EvictionSet(reduced, offset, set_index))
            members = set(reduced)
            pool = [va for va in pool if va not in members]
        return found
