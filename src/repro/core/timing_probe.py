"""Latency calibration: telling cache hits from DRAM fetches by time.

Everything eviction-based in the attack rests on one measurable gap:
an access served by the cache hierarchy is fast, one served by DRAM is
slow.  The attacker calibrates the boundary on its own memory using
``clflush`` (allowed on user data) before doing anything else.
"""

from repro.utils.stats import median

#: Cycles charged for the serialising fence (lfence/cpuid) issued
#: before every timed load, so the measurement cannot overlap earlier
#: memory traffic under the machine's MLP model.
FENCE_CYCLES = 10


def fenced_timed_read(attacker, vaddr):
    """lfence; rdtsc; load; rdtsc — a serialised timed load."""
    attacker.nop(FENCE_CYCLES)
    return attacker.timed_read(vaddr)


class LatencyThreshold:
    """A calibrated boundary between cached and DRAM-served loads."""

    def __init__(self, cached_median, dram_median):
        if dram_median <= cached_median:
            raise ValueError(
                "no usable timing gap (cached=%.1f, dram=%.1f)"
                % (cached_median, dram_median)
            )
        self.cached_median = cached_median
        self.dram_median = dram_median
        #: Split the gap closer to the cached side: DRAM latencies vary
        #: (row hits vs conflicts) while cached ones are tight.
        self.cutoff = cached_median + (dram_median - cached_median) * 0.4

    def is_dram(self, latency):
        """Classify one measured access latency."""
        return latency > self.cutoff

    def __repr__(self):
        return "LatencyThreshold(cached=%.1f, dram=%.1f, cutoff=%.1f)" % (
            self.cached_median,
            self.dram_median,
            self.cutoff,
        )


def calibrate_latency_threshold(attacker, samples=32):
    """Measure the cached/DRAM latency split on the attacker's own page.

    Warm loads give the cached distribution; ``clflush`` before each
    load gives the DRAM distribution (the row buffer is left to do
    whatever it does, as in a real calibration loop).
    """
    va = attacker.mmap(2, populate=True)
    probe = va + attacker.page_size  # avoid the just-faulted first page
    attacker.touch(probe)
    cached = []
    for _ in range(samples):
        cached.append(fenced_timed_read(attacker, probe))
    dram = []
    for _ in range(samples):
        attacker.clflush(probe)
        dram.append(fenced_timed_read(attacker, probe))
    return LatencyThreshold(median(cached), median(dram))


def timed_median(attacker, vaddr, trials=5):
    """Median fenced timed load (smooths scheduler-style noise)."""
    return median([fenced_timed_read(attacker, vaddr) for _ in range(trials)])
