"""The implicit double-sided hammer loop (Sections III-B, IV-D, IV-E).

One hammer round, per target of the pair:

1. sweep the target's TLB eviction set (drop the translation),
2. sweep the target's LLC eviction set (drop the cached L1PTE line),
3. touch the target — the walk misses the TLB, hits the PDE
   paging-structure cache, misses the data caches on the L1PTE, and
   fetches it from DRAM: one implicit activation of a kernel row.

The two targets' L1PTEs sit in the same bank two rows apart, so their
alternating activations row-conflict (clearing the row buffer — explicit
hammer's requirement 2 for free) and double-side the victim row between
them.  ``nop_padding`` inflates the per-round cost for the Figure-5
sweep.
"""

from repro.core.layout import PROBE_DATA_OFFSET

#: Span name under which each round lands on the trace bus.
HAMMER_ROUND_SPAN = "hammer-round"


class HammerTarget:
    """One side of a double-sided pair with its eviction sets."""

    __slots__ = ("va", "tlb_set", "llc_set")

    def __init__(self, va, tlb_set, llc_set):
        self.va = va
        self.tlb_set = tlb_set
        self.llc_set = llc_set


class DoubleSidedHammer:
    """Runs hammer rounds and records per-round cycle costs.

    ``llc_sweeps`` repeats each LLC eviction sweep; 1 suffices on the
    paper's inclusive machines, 2 is needed on non-inclusive LLCs where
    the first pass only demotes the L1PTE line from L2 into the victim
    LLC (Section V).
    """

    def __init__(
        self, attacker, target_a, target_b, llc_sweeps=1, trace=None, guard=None
    ):
        self.attacker = attacker
        self.target_a = target_a
        self.target_b = target_b
        self.llc_sweeps = llc_sweeps
        #: Optional trace bus; when set, every round is recorded as a
        #: ``hammer-round`` span (PThammerAttack passes the machine's).
        self.trace = trace
        #: Optional per-round retry hook (see LLCPoolBuilder): a burst
        #: spans far too many accesses for burst-level retry to survive
        #: realistic fault rates, so the self-healing pipeline retries
        #: one round at a time.  None runs rounds plainly.
        self._guard = guard if guard is not None else lambda operation: operation()

    def round(self, nop_padding=0):
        """One double-sided iteration; returns its cost in cycles."""
        attacker = self.attacker
        touch_many = attacker.touch_many
        start = attacker.rdtsc()
        for target in (self.target_a, self.target_b):
            # One batch per target: TLB sweep, LLC sweep(s), then the
            # touch that triggers the implicit kernel-row activation —
            # same access order as the scalar loops this replaces.
            addrs = list(target.tlb_set)
            for _ in range(self.llc_sweeps):
                addrs.extend(target.llc_set.lines)
            addrs.append(target.va + PROBE_DATA_OFFSET)
            touch_many(addrs)
        if nop_padding:
            attacker.nop(nop_padding)
        end = attacker.rdtsc()
        if self.trace is not None:
            self.trace.add_span(HAMMER_ROUND_SPAN, start, end)
        return end - start

    def run(self, rounds, nop_padding=0):
        """``rounds`` iterations; returns the per-round cycle costs."""
        return [
            self._guard(lambda: self.round(nop_padding)) for _ in range(rounds)
        ]

    def run_for_cycles(self, budget_cycles, nop_padding=0):
        """Hammer until ``budget_cycles`` have elapsed; returns costs."""
        attacker = self.attacker
        deadline = attacker.rdtsc() + budget_cycles
        costs = []
        while attacker.rdtsc() < deadline:
            costs.append(self._guard(lambda: self.round(nop_padding)))
        return costs


class SingleSidedHammer(DoubleSidedHammer):
    """Degraded fallback: implicit single-sided hammering of one target.

    Used when pair construction finds no verified same-bank pair (or
    the verified pairs decayed under system noise): both halves of the
    round aim at the *same* target, so each round performs two implicit
    activations of that one kernel row — the eviction sweeps between
    the touches guarantee the second touch misses TLB and caches again.
    No row-conflict or victim-sandwich guarantee, so flips are rarer
    (the paper's double-sided construction remains strictly better),
    but disturbance still accrues instead of the attack aborting.
    """

    def __init__(self, attacker, target, llc_sweeps=1, trace=None, guard=None):
        super().__init__(
            attacker, target, target, llc_sweeps=llc_sweeps, trace=trace,
            guard=guard,
        )
