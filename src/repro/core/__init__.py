"""The paper's contribution: PThammer and its building blocks."""

from repro.core.drama import reverse_engineer_row_span
from repro.core.explicit import ExplicitHammer, RowhammerTestTool, syscall_hammer
from repro.core.hammer import DoubleSidedHammer, HammerTarget, SingleSidedHammer
from repro.core.llc_eviction import (
    l1pte_line_offset,
    select_llc_eviction_set,
    selection_false_positive_rate,
    verify_eviction_set,
)
from repro.core.llc_offline import (
    find_minimal_llc_eviction_size,
    llc_miss_rate_by_size,
)
from repro.core.llc_pool import EvictionSet, LLCEvictionPool, LLCPoolBuilder
from repro.core.massage import MemoryMassage
from repro.core.pair_finding import CandidatePair, PairFinder, slot_stride_for_pairs
from repro.core.privesc import (
    CAPTURE_CRED,
    CAPTURE_JUNK,
    CAPTURE_L1PT,
    EscalationOutcome,
    PrivilegeEscalator,
)
from repro.core.pthammer import (
    ATTACK_PHASES,
    PairRecord,
    PThammerAttack,
    PThammerConfig,
    PThammerReport,
)
from repro.core.resilience import (
    RECOVERABLE,
    PhaseBudget,
    RetryPolicy,
    run_with_retry,
)
from repro.core.spray import PageTableSpray, SprayMismatch, marker_value
from repro.core.timing_probe import LatencyThreshold, calibrate_latency_threshold
from repro.core.tlb_eviction import (
    TLBEvictionSetBuilder,
    find_minimal_tlb_eviction_size,
    tlb_miss_rate_by_size,
)
from repro.core.uarch import UarchFacts

__all__ = [
    "ATTACK_PHASES",
    "CAPTURE_CRED",
    "CAPTURE_JUNK",
    "CAPTURE_L1PT",
    "CandidatePair",
    "DoubleSidedHammer",
    "EscalationOutcome",
    "EvictionSet",
    "ExplicitHammer",
    "HammerTarget",
    "LLCEvictionPool",
    "LLCPoolBuilder",
    "LatencyThreshold",
    "MemoryMassage",
    "PThammerAttack",
    "PThammerConfig",
    "PThammerReport",
    "PageTableSpray",
    "PairFinder",
    "PairRecord",
    "PhaseBudget",
    "PrivilegeEscalator",
    "RECOVERABLE",
    "RetryPolicy",
    "RowhammerTestTool",
    "SingleSidedHammer",
    "SprayMismatch",
    "TLBEvictionSetBuilder",
    "UarchFacts",
    "calibrate_latency_threshold",
    "find_minimal_llc_eviction_size",
    "find_minimal_tlb_eviction_size",
    "l1pte_line_offset",
    "llc_miss_rate_by_size",
    "marker_value",
    "reverse_engineer_row_span",
    "run_with_retry",
    "select_llc_eviction_set",
    "selection_false_positive_rate",
    "slot_stride_for_pairs",
    "syscall_hammer",
    "tlb_miss_rate_by_size",
    "verify_eviction_set",
]
