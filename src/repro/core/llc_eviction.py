"""Algorithm 2: selecting the pool eviction set that covers an L1PTE.

The attacker cannot compute which (LLC set, slice) holds the L1PTE of a
target address — the PTE's physical address is a kernel secret.  But it
*can* compute the L1PTE's line offset within its page-table page (pure
virtual-address arithmetic), shortlist the pool sets with that offset,
and find the right one by timing: sweep a candidate set, evict the
target's TLB entry, and time a load of the target.  Only the congruent
candidate forces the page-table walk to fetch the L1PTE from DRAM, so
it produces the maximum latency.

Per Section III-D the target address must be page-aligned with page
offset 0 and the L1PTE offset must differ from 0, so the sweep evicts
the L1PTE rather than the target's own data line.
"""

from repro.core.layout import PROBE_DATA_OFFSET
from repro.core.timing_probe import fenced_timed_read
from repro.params import LINE_SHIFT, PAGE_SHIFT, table_index
from repro.utils.stats import median

# Data-line offset used when warming a sibling page during verification:
# line class 32, clear of the page-aligned probe classes and of the
# PROBE_DATA_OFFSET class (33).
_WARM_DATA_OFFSET = 32 * 64


def l1pte_line_offset(target_va):
    """Line offset (0..63) of the target's L1PTE inside its L1PT page.

    Entry index ``table_index(va, 1)`` times 8 bytes, divided by the
    line size — knowable from the virtual address alone.
    """
    return (table_index(target_va, 1) * 8) >> LINE_SHIFT


def profile_eviction_set(
    attacker, eviction_set, tlb_eviction_set, target_va, trials=8, sweeps=1
):
    """Median latency of the target after sweeping one candidate set.

    Algorithm 2's ``profile_evict_set``: sweep the candidate lines
    (possibly evicting the L1PTE), flush the target's TLB entry (so the
    next access must walk), then time the target access.  ``sweeps`` >
    1 is needed on non-inclusive LLCs (see the hammer loop).
    """
    latencies = []
    # One batch per trial: the LLC sweep(s) then the TLB sweep, in the
    # same order the scalar loops used.
    sweep_addrs = list(eviction_set.lines) * sweeps + list(tlb_eviction_set)
    for _ in range(trials):
        attacker.touch_many(sweep_addrs)
        latencies.append(fenced_timed_read(attacker, target_va + PROBE_DATA_OFFSET))
    return median(latencies)


def verify_eviction_set(
    attacker, threshold, eviction_set, flush_translation, target_va, trials=3, sweeps=1
):
    """Attack-side health check: does the chosen set still work?

    A set selected by Algorithm 2 can *degrade*: under system noise the
    target's L1PT may be migrated to a frame whose L1PTE lands in a
    different (set, slice), after which sweeping the old set no longer
    pushes the target's walk to DRAM — the caller should re-select (and
    possibly rebuild the offset's pool sets).

    ``flush_translation`` must drop the target's TLB entry *reliably*
    (the pipeline passes a sweep of the builder's flood set); it runs
    *before* the candidate sweep each trial.  A flood's own page walks
    trample the cache, so after flushing we re-warm the target's L1PTE
    line through its *sibling page* (virtual bit 12 flipped): the
    sibling's L1PT entry shares the same 64-byte PTE line but has its
    own VPN, so the walk re-caches the line without restoring the
    target's TLB entry.  Only a congruent candidate sweep then evicts
    the freshly-warmed L1PTE, and the median over trials discriminates
    cleanly: congruent sets walk to DRAM every trial, stale sets hit
    the warm line.
    """
    warm_va = (target_va ^ (1 << PAGE_SHIFT)) + _WARM_DATA_OFFSET
    latencies = []
    # Warm touch plus candidate sweep(s) as one batch (same order as
    # the scalar loops); the flush runs first, outside the batch, since
    # it is the caller's own (already batched) sweep.
    trial_addrs = [warm_va] + list(eviction_set.lines) * sweeps
    for _ in range(trials):
        flush_translation()
        attacker.touch_many(trial_addrs)
        latencies.append(fenced_timed_read(attacker, target_va + PROBE_DATA_OFFSET))
    return threshold.is_dram(median(latencies))


def select_llc_eviction_set(
    attacker, pool, tlb_eviction_set, target_va, trials=8, sweeps=1
):
    """Algorithm 2: the pool set that maximises the target's walk latency.

    Returns ``(eviction_set, profile)`` where profile maps each
    candidate to its median latency (useful for the false-positive
    evaluation in Section IV-C).
    """
    if target_va & ((1 << PAGE_SHIFT) - 1):
        raise ValueError("target must be page-aligned (Section III-D)")
    offset = l1pte_line_offset(target_va)
    if offset == ((target_va >> LINE_SHIFT) & 63):
        raise ValueError(
            "target page offset collides with its L1PTE line offset; "
            "pick a different target page within the 2 MiB region"
        )
    candidates = pool.sets_for_offset(offset)
    if not candidates:
        raise LookupError("pool has no eviction sets for line offset %d" % offset)
    profile = {}
    best = None
    best_latency = -1.0
    for candidate in candidates:
        latency = profile_eviction_set(
            attacker, candidate, tlb_eviction_set, target_va, trials, sweeps
        )
        profile[candidate] = latency
        if latency > best_latency:
            best_latency = latency
            best = candidate
    return best, profile


def selection_false_positive_rate(
    attacker, inspector, pool, tlb_builder, targets, tlb_set_size, trials=8
):
    """Section IV-C evaluation: how often Algorithm 2 picks a wrong set.

    For each target, run the selection, then use the Inspector (the
    evaluation kernel module) to check whether the chosen set is truly
    congruent with the target's L1PTE.  The paper reports <= 6 %.
    """
    wrong = 0
    scored = 0
    for target_va in targets:
        tlb_set = tlb_builder.build(target_va, tlb_set_size)
        chosen, _ = select_llc_eviction_set(
            attacker, pool, tlb_set, target_va, trials
        )
        l1pte_paddr = inspector.l1pte_paddr(attacker.process, target_va)
        if l1pte_paddr is None:
            continue
        truth = inspector.llc_set_and_slice(l1pte_paddr)
        scored += 1
        if not _set_matches(attacker, inspector, chosen, truth):
            wrong += 1
    return wrong / scored if scored else 0.0


def _set_matches(attacker, inspector, eviction_set, truth):
    """Whether an eviction set's lines live in the ground-truth (set, slice)."""
    hits = 0
    for va in eviction_set.lines:
        frame = inspector.frame_of(attacker.process, va)
        if frame is None:
            continue
        paddr = (frame << PAGE_SHIFT) | (va & 0xFFF)
        if inspector.llc_set_and_slice(paddr) == truth:
            hits += 1
    return hits * 2 > len(eviction_set.lines)
