"""Fixed virtual-address regions the attack carves out for itself.

The attacker fully controls its virtual layout via MAP_FIXED, and the
attack components must never collide: the kernel's bump allocator for
address-less mmaps starts at the bottom of the user range, so the
attack parks its fixed-purpose regions far above it.
"""

#: Sprayed page-table slots (one thin mapping per 2 MiB of VA).
SPRAY_REGION = 0x2000_0000_0000

#: Pages mapped at computed VPNs for TLB eviction sets.
TLB_EVICTION_REGION = 0x7000_0000_0000

#: Superpage/regular buffers for LLC eviction-set construction.
LLC_BUFFER_REGION = 0x6000_0000_0000

#: Scratch probes (timing calibration etc.) use the kernel's cursor.

#: Byte offset within a target page used for timed loads.  The page
#: choice fixes the translation (and thus the hammered L1PTE); the
#: *data* line can sit anywhere in the page, and line-class 33 (an odd
#: class) keeps it clear of the noisy classes: 0 (page-aligned user
#: probes), 1 (the sprayed L1PTE class), 32 (TLB eviction-page
#: touches), and the even classes where the TLB pages' own L1PTE lines
#: fall.  A stable cached data line makes the timed load reflect the
#: L1PTE fetch alone.
PROBE_DATA_OFFSET = 33 * 64
