"""DRAMA-style DRAM-geometry reverse engineering (Pessl et al.).

The paper takes the DRAM row span ("RowsSize", 256 KiB on its
machines) as known, citing the DRAMA reverse-engineering work.  This
module is that step as an attacker-side tool: recover the row span
from pure timing, using the row-buffer conflict channel on the
attacker's own memory.

Physically contiguous buffer pages (a fresh buddy burst) make virtual
strides equal physical strides; two addresses conflict — both slow —
exactly when they sit in the same bank on different rows, which for a
stride ``s`` happens when ``s`` is a multiple of the row span.  The
smallest power-of-two stride that conflicts is the row span.
"""

from repro.core.layout import PROBE_DATA_OFFSET
from repro.core.timing_probe import FENCE_CYCLES
from repro.params import PAGE_SIZE
from repro.utils.stats import median


def _pair_latency(attacker, va_a, va_b, rounds=5):
    """Median latency of the second of two flushed back-to-back loads."""
    samples = []
    for _ in range(rounds):
        attacker.clflush(va_a)
        attacker.clflush(va_b)
        attacker.nop(FENCE_CYCLES)
        attacker.touch(va_a)
        samples.append(attacker.timed_read(va_b))
    return median(samples)


def reverse_engineer_row_span(
    attacker,
    conflict_level,
    min_stride=64 * 1024,
    max_stride=4 * 1024 * 1024,
    probes_per_stride=6,
):
    """Recover the DRAM row span from timing alone.

    ``conflict_level`` comes from
    :meth:`repro.core.pair_finding.PairFinder.conflict_level` (or any
    equivalent own-memory calibration).  Returns the smallest
    power-of-two stride at which address pairs consistently
    row-conflict, or None if none does within the range.
    """
    buffer_pages = 2 * max_stride // PAGE_SIZE
    base = attacker.mmap(buffer_pages, populate=True)
    threshold = conflict_level - 10.0
    stride = min_stride
    while stride <= max_stride:
        conflicts = 0
        for probe in range(probes_per_stride):
            va_a = base + probe * PAGE_SIZE + PROBE_DATA_OFFSET
            va_b = va_a + stride
            if _pair_latency(attacker, va_a, va_b) >= threshold:
                conflicts += 1
        if conflicts * 2 > probes_per_stride:
            return stride
        stride *= 2
    return None
