"""Public microarchitectural facts the attack is allowed to know.

The paper's attacker uses *reverse-engineered, published* knowledge:
the TLB set mappings (Gras et al.), LLC geometry and slice-hash
existence (Hund/Irazoqui/Maurice), and the DRAM row span (Pessl et
al.).  None of this is secret per machine model, so carrying it into
the attack does not violate the threat model — what stays hidden are
*runtime* secrets: physical addresses, the attacker's own page-table
locations, and slice indices of particular lines.

:class:`UarchFacts` packages exactly those public facts;
``from_config`` plays the role of looking the numbers up in a datasheet
for the machine under attack.
"""

from dataclasses import dataclass
from typing import Callable, Tuple

from repro.params import LINE_SIZE, PAGE_SIZE


def _mapping_fn(spec, sets):
    mask = sets - 1
    if spec == "linear":
        return lambda vpn: vpn & mask
    if isinstance(spec, tuple) and spec[0] == "secret":
        # Secure-TLB randomisation (Section V): the real mapping is
        # keyed and unpublished, so the attacker's best datasheet guess
        # is the conventional linear one — which is wrong, and that is
        # the defense.
        return lambda vpn: vpn & mask
    shift = spec[1]
    return lambda vpn: (vpn ^ (vpn >> shift)) & mask


@dataclass
class UarchFacts:
    """Datasheet-level knowledge about the victim machine."""

    tlb_l1_sets: int
    tlb_l1_ways: int
    tlb_l2_sets: int
    tlb_l2_ways: int
    tlb_l1_set_of: Callable[[int], int]
    tlb_l2_set_of: Callable[[int], int]
    tlb_huge_sets: int
    tlb_huge_ways: int
    tlb_huge_set_of: Callable[[int], int]
    llc_ways: int
    llc_sets_per_slice: int
    llc_slices: int
    row_span_bytes: int
    #: Standard DRAM refresh period in core cycles (64 ms at the core
    #: clock) — public per DDR3 spec; the attack uses it only to size
    #: its hammer bursts.
    refresh_interval_cycles: int = 166_000_000
    line_size: int = LINE_SIZE
    page_size: int = PAGE_SIZE

    @classmethod
    def from_config(cls, machine_config):
        """Read the public facts out of a machine configuration."""
        tlb = machine_config.tlb
        cache = machine_config.cache
        dram = machine_config.dram
        return cls(
            tlb_l1_sets=tlb.l1d_sets,
            tlb_l1_ways=tlb.l1d_ways,
            tlb_l2_sets=tlb.l2s_sets,
            tlb_l2_ways=tlb.l2s_ways,
            tlb_l1_set_of=_mapping_fn(tlb.l1d_mapping, tlb.l1d_sets),
            tlb_l2_set_of=_mapping_fn(tlb.l2s_mapping, tlb.l2s_sets),
            tlb_huge_sets=tlb.l1d_huge_sets,
            tlb_huge_ways=tlb.l1d_huge_ways,
            tlb_huge_set_of=_mapping_fn(tlb.l1d_huge_mapping, tlb.l1d_huge_sets),
            llc_ways=cache.llc_ways,
            llc_sets_per_slice=cache.llc_sets_per_slice,
            llc_slices=cache.llc_slices,
            row_span_bytes=dram.banks * dram.chunk_bytes,
            refresh_interval_cycles=dram.refresh_interval_cycles,
        )

    @property
    def tlb_total_ways(self) -> int:
        """Combined L1+L2 associativity, the Algorithm-1 starting point."""
        return self.tlb_l1_ways + self.tlb_l2_ways

    @property
    def llc_bytes(self) -> int:
        """Total LLC capacity."""
        return self.llc_sets_per_slice * self.llc_slices * self.llc_ways * self.line_size

    @property
    def set_index_bits_from_page_offset(self) -> int:
        """LLC set-index bits recoverable from a 4 KiB page offset (6..11)."""
        return 6

    def pair_stride_bytes(self) -> Tuple[int, int]:
        """(virtual stride, physical L1PTE stride) for double-sided pairs.

        Two virtual addresses ``2 * row_span * 512`` bytes apart have
        L1PTEs ``2 * row_span`` bytes apart — two row indices, same
        bank, sandwiching one victim row (Section IV-D).
        """
        return 2 * self.row_span_bytes * 512, 2 * self.row_span_bytes
