"""Explicit-hammer baselines and the rowhammer-test tool replica.

These are the attacks the paper's background covers (Section II) and
the calibration tool its Figure 5 uses:

* clflush-based **double-sided** hammering (Kim et al. / Seaborn) —
  flush both aggressors, read both, repeat;
* **single-sided** hammering (Seaborn) — hammer several addresses
  hoping for same-bank conflicts;
* **one-location** hammering (Gruss et al.) — a single address,
  relying on the controller's preemptive row closing;
* :class:`RowhammerTestTool` — a replica of the google/rowhammer-test
  double-sided tool with injectable NOP padding, used to find the
  maximum per-iteration cycle budget that still produces flips
  (Figure 5).  Like the original tool it may use privileged hints
  (``Inspector``) to pick physically-adjacent aggressors — it is
  calibration equipment, not part of the unprivileged attack.

All baselines hammer *user-owned* rows: under placement defenses like
CATT they can only flip user data, which is exactly the limitation
PThammer removes.
"""

from repro.params import PAGE_SIZE
from repro.utils.rng import hash64

#: Fill pattern for flip detection in the tool's own buffer.
FILL_WORD = 0xFFFFFFFFFFFFFFFF


class ExplicitHammer:
    """clflush-based hammering primitives over the attacker's memory."""

    def __init__(self, attacker):
        self.attacker = attacker

    def double_sided_round(self, va_a, va_b, nop_padding=0):
        """One Kim-style iteration: flush + read both aggressors."""
        attacker = self.attacker
        start = attacker.rdtsc()
        attacker.clflush(va_a)
        attacker.touch(va_a)
        attacker.clflush(va_b)
        attacker.touch(va_b)
        if nop_padding:
            attacker.nop(nop_padding)
        return attacker.rdtsc() - start

    def single_sided_round(self, vas, nop_padding=0):
        """One Seaborn-style iteration over several random addresses."""
        attacker = self.attacker
        start = attacker.rdtsc()
        for va in vas:
            attacker.clflush(va)
            attacker.touch(va)
        if nop_padding:
            attacker.nop(nop_padding)
        return attacker.rdtsc() - start

    def one_location_round(self, va, nop_padding=0):
        """One Gruss-style iteration: a single flushed address.

        Only effective when the memory controller preemptively closes
        rows (``DRAMConfig.row_policy='closed'`` or a non-zero
        ``preemptive_close_probability``).
        """
        attacker = self.attacker
        start = attacker.rdtsc()
        attacker.clflush(va)
        attacker.touch(va)
        if nop_padding:
            attacker.nop(nop_padding)
        return attacker.rdtsc() - start


class RowhammerTestTool:
    """Replica of google/rowhammer-test with NOP-padding injection.

    Allocates a buffer, picks aggressor pairs sandwiching buffer-owned
    victim rows (with privileged placement hints, as the original tool
    effectively had via pagemap), fills the victims with all-ones, and
    hammers while periodically scanning for flips.
    """

    def __init__(self, attacker, inspector, facts, buffer_pages=2048):
        self.attacker = attacker
        self.inspector = inspector
        self.facts = facts
        self.buffer_pages = buffer_pages
        self.base = attacker.mmap(buffer_pages, populate=True)
        self._fill_buffer()
        self.hammer = ExplicitHammer(attacker)

    def _fill_buffer(self):
        write = self.attacker.write
        for page in range(self.buffer_pages):
            base = self.base + page * PAGE_SIZE
            for word in range(0, PAGE_SIZE, 8):
                write(base + word, FILL_WORD)

    def _page_location(self, page):
        frame = self.inspector.frame_of(
            self.attacker.process, self.base + page * PAGE_SIZE
        )
        location = self.inspector.dram_location(frame << 12)
        return location.bank, location.row

    def aggressor_pairs(self, limit=8):
        """(va_a, va_b, victim_pages) triples sandwiching a buffer row.

        Uses pagemap-style privileged placement knowledge, as the
        original tool does when run for calibration.  ``victim_pages``
        are the buffer pages physically inside the sandwiched row, which
        is where the tool concentrates its flip scans.
        """
        by_location = {}
        for page in range(self.buffer_pages):
            by_location.setdefault(self._page_location(page), []).append(page)
        pairs = []
        for (bank, row), pages in sorted(by_location.items()):
            above = by_location.get((bank, row + 2))
            victims = by_location.get((bank, row + 1))
            if not above or not victims:
                continue
            pairs.append(
                (
                    self.base + pages[0] * PAGE_SIZE,
                    self.base + above[0] * PAGE_SIZE,
                    list(victims),
                )
            )
            if len(pairs) >= limit:
                break
        return pairs

    def scan_pages_for_flip(self, pages):
        """First flipped word among the given buffer pages, or None."""
        read = self.attacker.read
        for page in pages:
            base = self.base + page * PAGE_SIZE
            for word in range(0, PAGE_SIZE, 8):
                if read(base + word) != FILL_WORD:
                    return base + word
        return None

    def scan_for_flip(self):
        """First flipped word anywhere in the buffer, or None."""
        return self.scan_pages_for_flip(range(self.buffer_pages))

    def time_to_first_flip(self, nop_padding, budget_cycles, scan_every=None):
        """Hammer with padding until a flip appears or the budget runs out.

        Returns elapsed virtual cycles to the first observed flip, or
        None — the Figure-5 measurement for one padding value.  Each
        aggressor pair is hammered in bursts, scanning only its victim
        row between bursts (like the original tool's targeted checks);
        burst length adapts to the padded round cost so a whole refresh
        window is spent hammering, not scanning.
        """
        attacker = self.attacker
        self._fill_buffer()  # clear flips left by earlier measurements
        pairs = self.aggressor_pairs()
        if not pairs:
            raise RuntimeError("buffer produced no double-sided aggressor pairs")
        window = self.facts.refresh_interval_cycles
        start = attacker.rdtsc()
        # Calibrate the padded round cost on the first pair.
        probe_cost = max(
            1, self.hammer.double_sided_round(pairs[0][0], pairs[0][1], nop_padding)
        )
        if scan_every is None:
            scan_every = max(32, window // probe_cost)
        # Disturbance only accumulates within one refresh window, so
        # each pair is hammered continuously for a couple of windows
        # before moving on (rotating would reset the counters).
        per_pair = 2 * window
        index = 0
        while attacker.rdtsc() - start < budget_cycles:
            va_a, va_b, victims = pairs[index % len(pairs)]
            index += 1
            pair_start = attacker.rdtsc()
            while attacker.rdtsc() - pair_start < per_pair:
                for _ in range(scan_every):
                    self.hammer.double_sided_round(va_a, va_b, nop_padding)
                if self.scan_pages_for_flip(victims) is not None:
                    return attacker.rdtsc() - start
                if attacker.rdtsc() - start >= budget_cycles:
                    return None
        return None


def syscall_hammer(attacker, budget_cycles):
    """The Section-V syscall-based implicit-hammer attempt.

    Invokes a trivial system call in a tight loop for ``budget_cycles``.
    Each call implicitly touches kernel memory — but through the cache,
    where the line stays hot, so DRAM sees almost no activations and no
    bits flip: Konoth et al.'s negative result, reproduced.  Returns the
    number of calls made.
    """
    deadline = attacker.rdtsc() + budget_cycles
    calls = 0
    while attacker.rdtsc() < deadline:
        attacker.syscall()
        calls += 1
    return calls


def random_buffer_addresses(attacker, base, buffer_pages, count, seed=0):
    """Deterministically pseudo-random page addresses for single-sided."""
    return [
        base + (hash64(seed, i) % buffer_pages) * PAGE_SIZE for i in range(count)
    ]
