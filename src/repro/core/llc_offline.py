"""Offline LLC eviction-rate measurement (Figure 4, minimal set size).

"We extend the aforementioned kernel module to count the event of LLC
misses (longest_lat_cache.miss) and have a similar algorithm to
Algorithm 1 to decide the minimal size for an LLC eviction set"
(Section III-D).  Ground-truth physical congruence comes from the
Inspector — legitimate here because the paper runs this phase offline
on a machine the attacker controls.
"""

from repro.params import LINE_SIZE, PAGE_SIZE


def physically_congruent_lines(attacker, inspector, target_va, count, max_pages=None):
    """``count`` buffer lines in the same (LLC set, slice) as ``target_va``.

    Allocates pages and checks each candidate line's ground-truth
    placement until enough congruent lines are found.
    """
    target_frame = inspector.frame_of(attacker.process, target_va)
    target_paddr = (target_frame << 12) | (target_va & (PAGE_SIZE - 1))
    wanted = inspector.llc_set_and_slice(target_paddr)
    line_offset = (target_va & (PAGE_SIZE - 1)) >> 6
    found = []
    pages_tried = 0
    limit = max_pages if max_pages is not None else 64 * count
    while len(found) < count and pages_tried < limit:
        batch = min(64, limit - pages_tried)
        base = attacker.mmap(batch, populate=True)
        for page in range(batch):
            va = base + page * PAGE_SIZE + line_offset * LINE_SIZE
            frame = inspector.frame_of(attacker.process, va)
            paddr = (frame << 12) | (va & (PAGE_SIZE - 1))
            if inspector.llc_set_and_slice(paddr) == wanted:
                found.append(va)
                if len(found) == count:
                    break
        pages_tried += batch
    if len(found) < count:
        raise RuntimeError(
            "only found %d/%d congruent lines in %d pages"
            % (len(found), count, pages_tried)
        )
    return found


def profile_llc_miss_rate(attacker, inspector, target_va, lines, trials=40):
    """Fraction of trials where sweeping ``lines`` evicts the target line.

    PMC-based (longest_lat_cache.miss), like the extended kernel
    module: prime the target, sweep, re-access, and check whether the
    re-access missed the LLC.
    """
    misses = 0
    attacker.touch(target_va)
    for _ in range(trials):
        for va in lines:
            attacker.touch(va)
        before = inspector.perf_snapshot()
        attacker.touch(target_va)
        if inspector.llc_miss_delta(before) > 0:
            misses += 1
    return misses / trials


def llc_miss_rate_by_size(attacker, inspector, facts, sizes, trials=40, target_va=None):
    """Figure 4 series: LLC miss rate per eviction-set size.

    Builds one maximal physically-congruent line set and measures
    nested prefixes, mirroring how the paper trims one set.
    """
    if target_va is None:
        target_va = attacker.mmap(1, populate=True)
    top = max(sizes)
    lines = physically_congruent_lines(attacker, inspector, target_va, top)
    rates = {}
    for size in sorted(sizes):
        inspector.quiesce_caches()
        rates[size] = profile_llc_miss_rate(
            attacker, inspector, target_va, lines[:size], trials
        )
    return rates


def find_minimal_llc_eviction_size(
    attacker, inspector, facts, trials=40, tolerance=0.08, target_va=None
):
    """The smallest line count that still reliably evicts (offline).

    Starts from twice the associativity (24/32 lines), trims while the
    measured rate stays within tolerance of the full-set rate — the
    paper lands on associativity + 1.
    """
    if target_va is None:
        target_va = attacker.mmap(1, populate=True)
    size = 2 * facts.llc_ways
    lines = physically_congruent_lines(attacker, inspector, target_va, size)
    threshold = profile_llc_miss_rate(attacker, inspector, target_va, lines, trials)
    while size > 1:
        inspector.quiesce_caches()
        rate = profile_llc_miss_rate(
            attacker, inspector, target_va, lines[: size - 1], trials
        )
        if rate < threshold - tolerance:
            break
        size -= 1
    return size
