"""Double-sided pair construction and bank verification (Section IV-D).

Step 1 — geometry: choose two sprayed slots whose virtual addresses
differ by ``2 * RowsSize * 512`` bytes (256 MiB on the paper's
machines).  Because the buddy allocator serves a burst of page-table
allocations mostly consecutively, the slots' L1PTs are then highly
likely ``2 * RowsSize`` bytes apart physically: same bank, two row
indices apart, sandwiching one victim row.

Step 2 — timing: verify the same-bank guess with the row-buffer
conflict channel.  Alternating DRAM fetches of the two L1PTEs are slow
(precharge + activate every time) when they share a bank and fast (row
hits) when they do not.
"""

from repro.core.layout import PROBE_DATA_OFFSET
from repro.core.timing_probe import FENCE_CYCLES
from repro.params import SUPERPAGE_SIZE
from repro.utils.rng import hash64
from repro.utils.stats import median, percentile


class CandidatePair:
    """Two sprayed slots whose L1PTEs should sandwich a victim row."""

    __slots__ = ("slot_a", "slot_b", "va_a", "va_b", "conflict_score")

    def __init__(self, slot_a, slot_b, va_a, va_b):
        self.slot_a = slot_a
        self.slot_b = slot_b
        self.va_a = va_a
        self.va_b = va_b
        self.conflict_score = None

    def __repr__(self):
        return "CandidatePair(slots=%d/%d, score=%s)" % (
            self.slot_a,
            self.slot_b,
            self.conflict_score,
        )


def slot_stride_for_pairs(facts):
    """Slot-index distance between pair members.

    VA distance is ``2 * row_span * 512`` bytes; each slot covers 2 MiB
    of VA, so the slot stride is that distance over 2 MiB.
    """
    va_stride, _ = facts.pair_stride_bytes()
    return va_stride // SUPERPAGE_SIZE


class PairFinder:
    """Enumerates and timing-verifies double-sided candidate pairs."""

    def __init__(self, attacker, facts, spray, tlb_builder, tlb_set_size):
        self.attacker = attacker
        self.facts = facts
        self.spray = spray
        self.tlb_builder = tlb_builder
        self.tlb_set_size = tlb_set_size
        #: Ambiguous scores re-sampled by the adaptive path (recovery
        #: accounting; the pipeline mirrors it into ``recovery.*``).
        self.resamples = 0

    def candidate_pairs(self, limit=None):
        """Slot pairs at the pair stride, sampled across the whole spray.

        Sampling evenly (rather than taking the lowest slots) keeps one
        unlucky fragmented region of the spray from dominating the
        candidate list.
        """
        stride = slot_stride_for_pairs(self.facts)
        available = self.spray.slots - stride
        if available <= 0:
            return []
        count = available if limit is None else min(limit, available)
        step = max(1, available // count)
        pairs = []
        for slot in range(0, available, step):
            pairs.append(
                CandidatePair(
                    slot,
                    slot + stride,
                    self.spray.target_va(slot),
                    self.spray.target_va(slot + stride),
                )
            )
            if len(pairs) >= count:
                break
        return pairs

    def conflict_score(self, pair, llc_set_a, llc_set_b, rounds=6):
        """Median latency of the pair's *second* walk per round.

        Each round evicts both targets' TLB entries and L1PTE lines,
        then times back-to-back accesses.  Only the second access is
        scored: it immediately follows the first, so its DRAM fetch
        row-conflicts exactly when the two L1PTEs share a bank on
        different rows.  (The first access's latency is polluted by
        whatever rows the eviction sweeps touched.)
        """
        samples = self._score_rounds(pair, llc_set_a, llc_set_b, rounds)
        pair.conflict_score = median(samples)
        return pair.conflict_score

    def _score_rounds(self, pair, llc_set_a, llc_set_b, rounds):
        """``rounds`` raw second-walk latency samples for one pair."""
        attacker = self.attacker
        tlb_a = self.tlb_builder.build(pair.va_a, self.tlb_set_size)
        tlb_b = self.tlb_builder.build(pair.va_b, self.tlb_set_size)
        # Both LLC sweeps then both TLB sweeps, batched in the same
        # order as the scalar loops this replaces.
        sweep_addrs = (
            list(llc_set_a.lines) + list(llc_set_b.lines) + list(tlb_a) + list(tlb_b)
        )
        samples = []
        for _ in range(rounds):
            attacker.touch_many(sweep_addrs)
            attacker.nop(FENCE_CYCLES)  # serialise: a must reach DRAM itself
            attacker.touch(pair.va_a + PROBE_DATA_OFFSET)
            samples.append(attacker.timed_read(pair.va_b + PROBE_DATA_OFFSET))
        return samples

    def conflict_score_adaptive(
        self,
        pair,
        llc_set_a,
        llc_set_b,
        conflict_level,
        rounds=6,
        max_rounds=18,
        tolerance=10.0,
    ):
        """Score a pair, re-sampling while the verdict stays ambiguous.

        Under timing jitter a handful of samples can leave the median
        sitting right at the same-bank decision boundary
        (``conflict_level - tolerance``, as used by
        :meth:`split_by_conflict`).  Scores within ``tolerance`` of
        that boundary are re-sampled — up to ``max_rounds`` total —
        so noise widens the measurement instead of flipping the
        classification.
        """
        samples = self._score_rounds(pair, llc_set_a, llc_set_b, rounds)
        boundary = conflict_level - tolerance
        score = median(samples)
        while abs(score - boundary) <= tolerance and len(samples) < max_rounds:
            samples.extend(self._score_rounds(pair, llc_set_a, llc_set_b, rounds))
            score = median(samples)
            self.resamples += 1
        pair.conflict_score = score
        return score

    def conflict_level(self, pages=256, samples=200, seed=0x9A12):
        """Calibrate the row-conflict latency on the attacker's own memory.

        DRAMA-style: flush two random own lines, read them back to
        back; for the ~1/banks fraction of pairs that share a bank on
        different rows, the second read row-conflicts.  The high
        percentile of the score distribution is therefore the conflict
        level — no physical addresses needed.
        """
        attacker = self.attacker
        base = attacker.mmap(pages, populate=True)
        page_size = self.facts.page_size
        scores = []
        for i in range(samples):
            va_a = base + (hash64(seed, 2 * i) % pages) * page_size
            va_b = base + (hash64(seed, 2 * i + 1) % pages) * page_size
            if va_a == va_b:
                continue
            attacker.clflush(va_a + PROBE_DATA_OFFSET)
            attacker.clflush(va_b + PROBE_DATA_OFFSET)
            attacker.nop(FENCE_CYCLES)
            attacker.touch(va_a + PROBE_DATA_OFFSET)
            scores.append(attacker.timed_read(va_b + PROBE_DATA_OFFSET))
        return percentile(scores, 0.98)

    def search_pairs_by_timing(
        self, llc_set_for, conflict_level, slot_sample=24, anchors=4, seed=0xA17C
    ):
        """Timing-guided pair search for bank-hashed DRAM (extension).

        The blind VA-stride construction assumes adding ``2*RowsSize``
        to a physical address stays in the same bank; DRAMA-style XOR
        rank-mirroring breaks that.  The fallback is the same move the
        DRAMA paper makes: probe slot pairs *by timing alone*, keeping
        those whose alternating walks row-conflict.  Quadratic in the
        sample, so a few anchor slots are each scored against a sample
        of partners.

        Returns verified :class:`CandidatePair` objects (no row-distance
        guarantee — hammering such pairs may single-side a victim, which
        is weaker but still disturbs; the stride construction remains
        strictly better when the plain mapping holds).
        """
        rng_offset = hash64(seed) % max(1, self.spray.slots)
        anchor_slots = [
            (rng_offset + i * (self.spray.slots // max(1, anchors)))
            % self.spray.slots
            for i in range(anchors)
        ]
        found = []
        threshold = conflict_level - 10.0
        for anchor in anchor_slots:
            va_a = self.spray.target_va(anchor)
            for j in range(slot_sample):
                partner = (
                    anchor + 1 + (hash64(seed, anchor, j) % (self.spray.slots - 1))
                ) % self.spray.slots
                if partner == anchor:
                    continue
                pair = CandidatePair(
                    anchor, partner, va_a, self.spray.target_va(partner)
                )
                score = self.conflict_score(
                    pair, llc_set_for(pair.va_a), llc_set_for(pair.va_b)
                )
                if score >= threshold:
                    found.append(pair)
        return found

    @staticmethod
    def split_by_conflict(pairs, conflict_level, tolerance=10.0):
        """Partition scored pairs into (same-bank, different-bank).

        A pair whose score reaches the calibrated row-conflict level
        (within tolerance — walks add a few cycles either way) has
        row-conflicting L1PTEs: same bank, different rows.
        """
        threshold = conflict_level - tolerance
        scored = [p for p in pairs if p.conflict_score is not None]
        same_bank = [p for p in scored if p.conflict_score >= threshold]
        different = [p for p in scored if p.conflict_score < threshold]
        return same_bank, different
