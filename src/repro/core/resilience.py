"""Self-healing primitives: retry policies, backoff, and phase budgets.

Under system noise (:mod:`repro.chaos`) individual operations fail
sporadically — an access raises a retryable
:class:`~repro.errors.TransientFault`, a churned-away page table
surfaces as a :class:`~repro.errors.SegmentationFault` — and whole
phases can degrade when eviction sets decay.  The attack pipeline
wraps its phases with these helpers so failures are *retried under
exponential backoff* (with deterministic jitter, so runs stay
reproducible) instead of aborting, and every recovery action is
visible as ``recovery.*`` counters and TraceBus events.

``PhaseBudget`` bounds how long recovery may thrash: a phase that
exhausts its virtual-cycle or host wall-clock budget raises
:class:`~repro.errors.PhaseBudgetExceeded`, letting the caller degrade
(or give up cleanly) rather than spin forever.
"""

import time

from repro.errors import (
    ConfigError,
    PhaseBudgetExceeded,
    SegmentationFault,
    TransientFault,
)
from repro.observe import ATTACK, RECOVERY_RETRY
from repro.utils.rng import hash_to_unit

#: Errors the attack loop treats as recoverable by default: injected
#: transients (always safe to retry) and segfaults from churned-away
#: mappings (the retried access demand-heals them).
RECOVERABLE = (TransientFault, SegmentationFault)


class RetryPolicy:
    """Bounded retry with exponentially backed-off, jittered waits.

    The backoff is charged in *virtual* cycles (``attacker.nop``), so
    it is deterministic, appears in phase timings, and models a real
    attacker sleeping out a burst of interference.  Jitter derives from
    ``hash_to_unit(seed, attempt)`` — no global RNG is consumed.
    """

    def __init__(
        self,
        max_attempts=4,
        base_cycles=2_000,
        multiplier=2.0,
        jitter=0.25,
        seed=0x2E77,
    ):
        if max_attempts < 1:
            raise ConfigError("retry policy needs at least one attempt")
        if base_cycles < 0:
            raise ConfigError("backoff base must be non-negative")
        if multiplier < 1.0:
            raise ConfigError("backoff multiplier must be >= 1")
        if not 0.0 <= jitter <= 1.0:
            raise ConfigError("backoff jitter must be a fraction in [0, 1]")
        self.max_attempts = max_attempts
        self.base_cycles = base_cycles
        self.multiplier = multiplier
        self.jitter = jitter
        self.seed = seed

    def backoff_cycles(self, attempt):
        """Cycles to wait after failed attempt ``attempt`` (0-based)."""
        base = self.base_cycles * (self.multiplier ** attempt)
        spread = base * self.jitter * hash_to_unit(self.seed, attempt)
        return int(base + spread)


class PhaseBudget:
    """A per-phase ceiling on virtual cycles and host wall-clock time."""

    def __init__(self, attacker, max_cycles=None, max_host_seconds=None):
        if max_cycles is not None and max_cycles <= 0:
            raise ConfigError("phase cycle budget must be positive")
        if max_host_seconds is not None and max_host_seconds <= 0:
            raise ConfigError("phase wall budget must be positive")
        self._attacker = attacker
        self.max_cycles = max_cycles
        self.max_host_seconds = max_host_seconds
        self._start_cycles = attacker.rdtsc()
        self._start_host = time.time()

    def check(self, phase="phase"):
        """Raise :class:`PhaseBudgetExceeded` when a limit is blown."""
        if self.max_cycles is not None:
            spent = self._attacker.rdtsc() - self._start_cycles
            if spent > self.max_cycles:
                raise PhaseBudgetExceeded(
                    "%s exceeded its cycle budget (%d > %d)"
                    % (phase, spent, self.max_cycles)
                )
        if self.max_host_seconds is not None:
            spent = time.time() - self._start_host
            if spent > self.max_host_seconds:
                raise PhaseBudgetExceeded(
                    "%s exceeded its wall budget (%.1fs > %.1fs)"
                    % (phase, spent, self.max_host_seconds)
                )


def run_with_retry(
    attacker,
    operation,
    policy,
    phase,
    metrics=None,
    trace=None,
    budget=None,
    recoverable=RECOVERABLE,
):
    """Run ``operation()`` with retry-on-recoverable-error semantics.

    Each retry increments the ``recovery.retry`` counter, emits a
    ``recovery.retry`` event (when tracing is on), and burns the
    policy's backoff on the virtual clock before trying again.  The
    final failure propagates; a budget check runs before every attempt.
    """
    last_error = None
    for attempt in range(policy.max_attempts):
        if budget is not None:
            budget.check(phase)
        try:
            return operation()
        except recoverable as error:
            last_error = error
            if attempt == policy.max_attempts - 1:
                raise
            backoff = policy.backoff_cycles(attempt)
            if metrics is not None:
                metrics.inc("recovery.retry")
                metrics.inc("recovery.retry.%s" % phase)
            if trace is not None and trace.enabled:
                trace.emit(
                    RECOVERY_RETRY,
                    ATTACK,
                    phase=phase,
                    attempt=attempt + 1,
                    error=type(error).__name__,
                    backoff=backoff,
                )
            attacker.nop(backoff)
    raise last_error  # unreachable; keeps the control flow explicit
