"""The end-to-end PThammer attack (the paper's Section III/IV pipeline).

Phases, each timed on the virtual clock for the Table-II breakdown:

1. *Calibrate* — learn the cached/DRAM latency boundary (own memory).
2. *TLB preparation* — map the pages backing the TLB eviction sets.
3. *LLC pool preparation* — partition a buffer (superpages or 4 KiB
   pages, per the system setting) into the eviction-set pool.
4. *Spray* — fill kernel memory with Level-1 page tables.
5. *Pair search* — stride-paired slots, Algorithm-2 eviction-set
   selection, and row-buffer-conflict verification.
6. *Hammer/check loop* — double-sided implicit hammering of each
   verified pair, scanning the spray for flips, escalating on capture.
"""

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.hammer import HAMMER_ROUND_SPAN, DoubleSidedHammer, HammerTarget
from repro.core.llc_eviction import l1pte_line_offset, select_llc_eviction_set
from repro.core.llc_pool import LLCPoolBuilder
from repro.core.massage import MemoryMassage
from repro.core.pair_finding import PairFinder
from repro.core.privesc import EscalationOutcome, PrivilegeEscalator
from repro.core.spray import PageTableSpray
from repro.core.timing_probe import calibrate_latency_threshold
from repro.core.tlb_eviction import TLBEvictionSetBuilder
from repro.core.uarch import UarchFacts
from repro.observe import NULL_TRACE, TraceBus
from repro.utils.stats import RunningStats


@dataclass
class PThammerConfig:
    """Attack knobs; defaults suit the scaled machine presets."""

    #: Use 2 MiB superpages for the LLC eviction buffer (the paper's
    #: two system settings; Table II shows the pool-prep speedup).
    superpages: bool = True
    #: Sprayed 2 MiB slots (each costs the kernel one fully-populated
    #: L1PT page).
    spray_slots: int = 768
    #: Distinct shared user pages cycled through the spray.  More pages
    #: spread the physical targets of frame-bit flips over more distinct
    #: frames, improving the odds that a corrupted L1PTE lands on
    #: another sprayed L1PT (the capture the escalation needs).
    shm_pages: int = 24
    #: TLB eviction-set size; the offline Algorithm-1 answer (12).
    tlb_eviction_size: int = 12
    #: LLC eviction-set size; None means associativity + 1.
    llc_eviction_size: Optional[int] = None
    #: Build the complete 64-offset pool instead of only the offsets the
    #: spray needs (slower; what the paper does).
    full_pool: bool = False
    #: Candidate pairs to score, and verified pairs to hammer.
    pair_sample: int = 24
    max_pairs: int = 12
    #: Hammer burst length per pair, in refresh windows.
    windows_per_pair: float = 2.2
    #: Frames the escalation probe may scan for the attacker's cred.
    max_probe_frames: int = 4096
    #: Child processes to spawn before hammering (cred spray; only
    #: useful against CTA but harmless elsewhere).
    cred_spray_processes: int = 0
    #: LLC eviction sweeps per hammer round and per Algorithm-2 probe;
    #: 1 on the paper's inclusive LLCs, 2 for non-inclusive designs
    #: (Section V, hardware variations).
    llc_sweeps: int = 1
    #: Exhaust fragmented small buddy blocks before spraying (Cheng et
    #: al.'s massaging, used by the paper against CATT in IV-G1) so the
    #: page-table spray comes out physically contiguous.
    massage: bool = False


@dataclass
class PairRecord:
    """Per-pair measurements for the report."""

    slot_a: int
    slot_b: int
    conflict_score: float
    selection_cycles: int = 0
    hammer_cycles: int = 0
    rounds: int = 0
    round_cost_mean: float = 0.0
    check_cycles: int = 0
    flips_found: int = 0


@dataclass
class PThammerReport:
    """Everything the attack measured, on the virtual clock."""

    machine_name: str
    superpages: bool
    calibrate_cycles: int = 0
    tlb_prep_cycles: int = 0
    llc_prep_cycles: int = 0
    spray_cycles: int = 0
    pair_search_cycles: int = 0
    pairs: List[PairRecord] = field(default_factory=list)
    candidate_pairs: int = 0
    same_bank_pairs: int = 0
    cycles_to_first_flip: Optional[int] = None
    cycles_to_escalation: Optional[int] = None
    outcome: Optional[EscalationOutcome] = None
    round_costs: List[int] = field(default_factory=list)
    #: (phase name, start cycle, end cycle) for every attack phase, in
    #: execution order — the machine-readable Table-II breakdown.
    timeline: List[Tuple[str, int, int]] = field(default_factory=list)

    @property
    def escalated(self):
        return bool(self.outcome and self.outcome.success)

    @property
    def total_flips(self):
        return self.outcome.flips_observed if self.outcome else 0

    def mean_selection_cycles(self):
        stats = RunningStats()
        stats.extend(p.selection_cycles for p in self.pairs)
        return stats.mean if stats.count else 0.0

    def mean_check_cycles(self):
        stats = RunningStats()
        stats.extend(p.check_cycles for p in self.pairs)
        return stats.mean if stats.count else 0.0

    def mean_hammer_cycles(self):
        stats = RunningStats()
        stats.extend(p.hammer_cycles for p in self.pairs)
        return stats.mean if stats.count else 0.0

    def timeline_summary(self):
        """One line per phase with its virtual-cycle span."""
        return "\n".join(
            "  %-12s %12d .. %-12d (%d cycles)"
            % (name, start, end, end - start)
            for name, start, end in self.timeline
        )

    def summary(self):
        lines = [
            "PThammer on %s (%s pages)"
            % (self.machine_name, "super" if self.superpages else "regular"),
            "  prep: tlb=%d llc=%d spray=%d pair-search=%d cycles"
            % (
                self.tlb_prep_cycles,
                self.llc_prep_cycles,
                self.spray_cycles,
                self.pair_search_cycles,
            ),
            "  pairs: %d candidates, %d same-bank, %d hammered"
            % (self.candidate_pairs, self.same_bank_pairs, len(self.pairs)),
            "  flips: %d (first at %s cycles)"
            % (self.total_flips, self.cycles_to_first_flip),
            "  escalated: %s (%s)"
            % (self.escalated, self.outcome.method if self.outcome else None),
        ]
        return "\n".join(lines)


class PThammerAttack:
    """Drives the whole attack against one machine via its AttackerView.

    Phase boundaries are recorded as span scopes on the machine's trace
    bus (:mod:`repro.observe`): the depth-0 spans become
    ``report.timeline`` and the per-round ``hammer-round`` spans become
    ``report.round_costs`` — when full event tracing is enabled
    (``machine.trace.enable()``), the same spans let
    :func:`repro.analysis.profile_trace` attribute every TLB/LLC/DRAM
    event to the phase that caused it.
    """

    def __init__(self, attacker, config=None, facts=None):
        self.attacker = attacker
        self.config = config if config is not None else PThammerConfig()
        machine = getattr(attacker, "_machine", None)
        #: The machine's trace bus; spans are recorded even when event
        #: tracing is off (they cost a handful of appends per phase).
        self.trace = getattr(machine, "trace", None)
        if self.trace is None or self.trace is NULL_TRACE:
            self.trace = TraceBus()
        # Datasheet knowledge for the machine under attack; reading it
        # from the machine config mirrors looking it up in published
        # reverse-engineering results (see repro.core.uarch).
        self.facts = (
            facts
            if facts is not None
            else UarchFacts.from_config(attacker._machine.config)
        )
        self.tlb_builder = TLBEvictionSetBuilder(attacker, self.facts)
        self.threshold = None
        self.pool = None
        self.spray = None
        self.children = []

    # -- phases -----------------------------------------------------------

    def prepare(self, report):
        """Phases 1-4: calibration, eviction machinery, spray."""
        attacker = self.attacker
        config = self.config
        trace = self.trace
        with trace.span("calibrate") as span:
            self.threshold = calibrate_latency_threshold(attacker)
        report.calibrate_cycles = span.cycles

        for _ in range(config.cred_spray_processes):
            self.children.append(attacker.spawn())

        if config.massage:
            with trace.span("massage"):
                MemoryMassage(attacker).soak_small_blocks()

        with trace.span("spray") as span:
            self.spray = PageTableSpray(
                attacker, config.spray_slots, shm_pages=config.shm_pages
            ).execute()
        report.spray_cycles = span.cycles

        set_size = (
            config.llc_eviction_size
            if config.llc_eviction_size is not None
            else self.facts.llc_ways + 1
        )
        builder = LLCPoolBuilder(attacker, self.facts, self.threshold, set_size)
        offsets = None if config.full_pool else [
            l1pte_line_offset(self.spray.target_va(0))
        ]
        with trace.span("llc-prep"):
            self.pool = builder.prepare(
                superpages=config.superpages, line_offsets=offsets
            )
        report.llc_prep_cycles = self.pool.prep_cycles
        report.tlb_prep_cycles = self.tlb_builder.prep_cycles

    def find_pairs(self, report):
        """Phase 5: stride pairs, Algorithm 2, bank verification."""
        attacker = self.attacker
        config = self.config
        start = attacker.rdtsc()
        finder = PairFinder(
            attacker, self.facts, self.spray, self.tlb_builder, config.tlb_eviction_size
        )
        candidates = finder.candidate_pairs(limit=config.pair_sample)
        report.candidate_pairs = len(candidates)
        llc_sets = {}
        conflict_level = finder.conflict_level()
        for pair in candidates:
            llc_a = self._llc_set_for(pair.va_a, llc_sets)
            llc_b = self._llc_set_for(pair.va_b, llc_sets)
            finder.conflict_score(pair, llc_a, llc_b)
        same_bank, _ = PairFinder.split_by_conflict(candidates, conflict_level)
        if not same_bank:
            # The stride construction found nothing — a bank-hashed
            # DRAM mapping, most likely.  Fall back to DRAMA-style
            # timing-guided pair search (slower, no row-distance
            # guarantee, but bank-correct).
            same_bank = finder.search_pairs_by_timing(
                lambda va: self._llc_set_for(va, llc_sets), conflict_level
            )
        same_bank.sort(key=lambda p: -p.conflict_score)
        report.same_bank_pairs = len(same_bank)
        report.pair_search_cycles = attacker.rdtsc() - start
        report.tlb_prep_cycles = self.tlb_builder.prep_cycles
        return same_bank, llc_sets

    def _llc_set_for(self, target_va, cache):
        """Algorithm-2 selection for one target, memoised per VA."""
        if target_va in cache:
            return cache[target_va]
        chosen, _ = select_llc_eviction_set(
            self.attacker,
            self.pool,
            self.tlb_builder.build(target_va, self.config.tlb_eviction_size),
            target_va,
            sweeps=self.config.llc_sweeps,
        )
        cache[target_va] = chosen
        return chosen

    def hammer_pairs(self, report, pairs, llc_sets):
        """Phase 6: hammer, check, escalate.

        Per-round costs land on the trace bus as ``hammer-round`` spans
        (Figure 6's data); ``report.round_costs`` is derived from them
        on the way out, including the early escalation return.
        """
        first_span = len(self.trace.spans)
        try:
            self._hammer_pairs(report, pairs, llc_sets)
        finally:
            report.round_costs = [
                span.cycles
                for span in self.trace.spans_named(HAMMER_ROUND_SPAN, first_span)
            ]

    def _hammer_pairs(self, report, pairs, llc_sets):
        attacker = self.attacker
        config = self.config
        outcome = EscalationOutcome()
        report.outcome = outcome
        escalator = PrivilegeEscalator(
            attacker,
            self.spray,
            self.tlb_builder,
            config.tlb_eviction_size,
            max_probe_frames=config.max_probe_frames,
        )
        budget = int(config.windows_per_pair * self.facts.refresh_interval_cycles)
        for pair in pairs[: config.max_pairs]:
            record = PairRecord(pair.slot_a, pair.slot_b, pair.conflict_score)
            start = attacker.rdtsc()
            target_a = HammerTarget(
                pair.va_a,
                self.tlb_builder.build(pair.va_a, config.tlb_eviction_size),
                llc_sets[pair.va_a],
            )
            target_b = HammerTarget(
                pair.va_b,
                self.tlb_builder.build(pair.va_b, config.tlb_eviction_size),
                llc_sets[pair.va_b],
            )
            record.selection_cycles = attacker.rdtsc() - start

            hammer = DoubleSidedHammer(
                attacker,
                target_a,
                target_b,
                llc_sweeps=config.llc_sweeps,
                trace=self.trace,
            )
            start = attacker.rdtsc()
            costs = hammer.run_for_cycles(budget)
            record.hammer_cycles = attacker.rdtsc() - start
            record.rounds = len(costs)
            if costs:
                record.round_cost_mean = sum(costs) / len(costs)

            start = attacker.rdtsc()
            mismatches = self._safe_scan()
            record.check_cycles = attacker.rdtsc() - start
            record.flips_found = len(mismatches)
            report.pairs.append(record)
            if mismatches and report.cycles_to_first_flip is None:
                report.cycles_to_first_flip = attacker.rdtsc()
            if escalator.process_mismatches(mismatches, outcome):
                report.cycles_to_escalation = attacker.rdtsc()
                return
        return

    def _safe_scan(self):
        """Spray scan; unreadable pages surface as value-None mismatches."""
        return self.spray.scan()

    # -- entry point --------------------------------------------------------

    def run(self):
        """Run the complete attack; returns the :class:`PThammerReport`.

        A machine whose caches defeat eviction-set construction (e.g.
        CEASER/ScatterCache-style index randomisation, Section V) makes
        the attack fail gracefully: the report carries the reason and
        ``escalated`` stays False.
        """
        report = PThammerReport(
            machine_name=self.facts_name(), superpages=self.config.superpages
        )
        trace = self.trace
        first_span = len(trace.spans)
        try:
            with trace.span("prepare"):
                self.prepare(report)
            if self.pool.set_count() == 0:
                report.outcome = EscalationOutcome()
                report.outcome.note(
                    "LLC eviction-set construction failed: no congruent line "
                    "groups found (randomised cache indexing defeats the attack)"
                )
                return report
            try:
                with trace.span("pair-search"):
                    pairs, llc_sets = self.find_pairs(report)
            except LookupError as error:
                report.outcome = EscalationOutcome()
                report.outcome.note("eviction-set selection failed: %s" % error)
                return report
            with trace.span("hammer-check"):
                self.hammer_pairs(report, pairs, llc_sets)
            return report
        finally:
            # The machine-readable Table-II breakdown: this run's
            # top-level phase scopes, straight off the trace.
            report.timeline = [
                (span.name, span.start, span.end)
                for span in trace.spans[first_span:]
                if span.depth == 0 and span.end is not None
            ]

    def facts_name(self):
        """Best-effort machine name for reports."""
        machine = getattr(self.attacker, "_machine", None)
        return machine.config.name if machine is not None else "unknown"
