"""The end-to-end PThammer attack (the paper's Section III/IV pipeline).

Phases, each timed on the virtual clock for the Table-II breakdown:

1. *Calibrate* — learn the cached/DRAM latency boundary (own memory).
2. *TLB preparation* — map the pages backing the TLB eviction sets.
3. *LLC pool preparation* — partition a buffer (superpages or 4 KiB
   pages, per the system setting) into the eviction-set pool.
4. *Spray* — fill kernel memory with Level-1 page tables.
5. *Pair search* — stride-paired slots, Algorithm-2 eviction-set
   selection, and row-buffer-conflict verification.
6. *Hammer/check loop* — double-sided implicit hammering of each
   verified pair, scanning the spray for flips, escalating on capture.

The hot phases (hammer rounds, eviction sweeps, pair scoring) issue
their address sweeps through the batched ``AttackerView.touch_many``
API, so a fast-path machine amortises per-access dispatch without
changing behaviour (docs/PERFORMANCE.md); ``REPRO_FAST_PATH=0`` runs
the same pipeline against the reference engine.
"""

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.hammer import (
    HAMMER_ROUND_SPAN,
    DoubleSidedHammer,
    HammerTarget,
    SingleSidedHammer,
)
from repro.core.llc_eviction import (
    l1pte_line_offset,
    select_llc_eviction_set,
    verify_eviction_set,
)
from repro.core.llc_pool import LLCPoolBuilder
from repro.core.massage import MemoryMassage
from repro.core.pair_finding import CandidatePair, PairFinder
from repro.core.privesc import EscalationOutcome, PrivilegeEscalator
from repro.core.resilience import PhaseBudget, RetryPolicy, run_with_retry
from repro.core.spray import PageTableSpray
from repro.core.timing_probe import calibrate_latency_threshold
from repro.core.tlb_eviction import TLBEvictionSetBuilder
from repro.core.uarch import UarchFacts
from repro.errors import PhaseBudgetExceeded
from repro.observe import (
    ATTACK,
    NULL_TRACE,
    RECOVERY_FALLBACK,
    RECOVERY_REBUILD,
    RECOVERY_RESUME,
    TraceBus,
)
from repro.patterns import PatternHammer, compile_pattern
from repro.patterns import get as get_pattern
from repro.utils.stats import RunningStats

#: The pipeline's phases, in execution order.  ``run`` walks them as a
#: state machine: completed phases are skipped on re-entry, so a run
#: interrupted by an unrecoverable fault (or a blown phase budget) can
#: be resumed by calling ``run`` again on the same attack object.
ATTACK_PHASES = ("calibrate", "spray", "llc-prep", "pair-search", "hammer-check")


@dataclass
class PThammerConfig:
    """Attack knobs; defaults suit the scaled machine presets."""

    #: Use 2 MiB superpages for the LLC eviction buffer (the paper's
    #: two system settings; Table II shows the pool-prep speedup).
    superpages: bool = True
    #: Sprayed 2 MiB slots (each costs the kernel one fully-populated
    #: L1PT page).
    spray_slots: int = 768
    #: Distinct shared user pages cycled through the spray.  More pages
    #: spread the physical targets of frame-bit flips over more distinct
    #: frames, improving the odds that a corrupted L1PTE lands on
    #: another sprayed L1PT (the capture the escalation needs).
    shm_pages: int = 24
    #: TLB eviction-set size; the offline Algorithm-1 answer (12).
    tlb_eviction_size: int = 12
    #: LLC eviction-set size; None means associativity + 1.
    llc_eviction_size: Optional[int] = None
    #: Build the complete 64-offset pool instead of only the offsets the
    #: spray needs (slower; what the paper does).
    full_pool: bool = False
    #: Candidate pairs to score, and verified pairs to hammer.
    pair_sample: int = 24
    max_pairs: int = 12
    #: Hammer burst length per pair, in refresh windows.
    windows_per_pair: float = 2.2
    #: Frames the escalation probe may scan for the attacker's cred.
    max_probe_frames: int = 4096
    #: Child processes to spawn before hammering (cred spray; only
    #: useful against CTA but harmless elsewhere).
    cred_spray_processes: int = 0
    #: LLC eviction sweeps per hammer round and per Algorithm-2 probe;
    #: 1 on the paper's inclusive LLCs, 2 for non-inclusive designs
    #: (Section V, hardware variations).
    llc_sweeps: int = 1
    #: Exhaust fragmented small buddy blocks before spraying (Cheng et
    #: al.'s massaging, used by the paper against CATT in IV-G1) so the
    #: page-table spray comes out physically contiguous.
    massage: bool = False
    #: Self-healing (repro.core.resilience).  ``None`` auto-enables
    #: recovery exactly when a chaos injector is attached to the
    #: machine, keeping the quiet simulation byte-for-byte identical
    #: to earlier releases; True/False force it either way.
    resilience: Optional[bool] = None
    #: Recoverable-fault retries per pipeline operation, and the base
    #: of their exponential virtual-cycle backoff.
    retry_attempts: int = 4
    retry_base_cycles: int = 20_000
    #: Per-phase budgets; a blown budget ends the run gracefully (the
    #: report carries the partial progress) instead of thrashing.
    phase_cycle_budget: Optional[int] = None
    phase_wall_seconds: Optional[float] = None
    #: Degradations: fall back to single-sided hammering when no
    #: same-bank pair survives verification, and grow the LLC eviction
    #: sets by ``set_size_growth`` lines when pool construction finds
    #: no congruent groups (noise drowning the conflict tests).
    allow_single_sided: bool = True
    set_size_growth: int = 2
    #: Registered hammer-pattern name (repro.patterns) to compile for
    #: the hammer/check loop.  None keeps the hard-coded double-sided
    #: loop (``single_sided`` when only one target survives); a name
    #: routes every burst through the pattern compiler — aggressor
    #: roles bind to the verified pair round-robin, so every pattern
    #: degrades to single-target hammering exactly like the default.
    pattern: Optional[str] = None


@dataclass
class PairRecord:
    """Per-pair measurements for the report."""

    slot_a: int
    slot_b: int
    conflict_score: float
    selection_cycles: int = 0
    hammer_cycles: int = 0
    rounds: int = 0
    round_cost_mean: float = 0.0
    check_cycles: int = 0
    flips_found: int = 0


@dataclass
class PThammerReport:
    """Everything the attack measured, on the virtual clock."""

    machine_name: str
    superpages: bool
    calibrate_cycles: int = 0
    tlb_prep_cycles: int = 0
    llc_prep_cycles: int = 0
    spray_cycles: int = 0
    pair_search_cycles: int = 0
    pairs: List[PairRecord] = field(default_factory=list)
    candidate_pairs: int = 0
    same_bank_pairs: int = 0
    cycles_to_first_flip: Optional[int] = None
    cycles_to_escalation: Optional[int] = None
    outcome: Optional[EscalationOutcome] = None
    round_costs: List[int] = field(default_factory=list)
    #: (phase name, start cycle, end cycle) for every attack phase, in
    #: execution order — the machine-readable Table-II breakdown.
    timeline: List[Tuple[str, int, int]] = field(default_factory=list)
    #: Phase names that ran to completion (the state-machine record;
    #: checkpointed into the run ledger by the CLI).
    phases_completed: List[str] = field(default_factory=list)
    #: Human-readable notes about graceful degradations taken (larger
    #: eviction sets, single-sided fallback, ...); empty on clean runs.
    degradations: List[str] = field(default_factory=list)

    @property
    def escalated(self):
        return bool(self.outcome and self.outcome.success)

    @property
    def total_flips(self):
        return self.outcome.flips_observed if self.outcome else 0

    def mean_selection_cycles(self):
        stats = RunningStats()
        stats.extend(p.selection_cycles for p in self.pairs)
        return stats.mean if stats.count else 0.0

    def mean_check_cycles(self):
        stats = RunningStats()
        stats.extend(p.check_cycles for p in self.pairs)
        return stats.mean if stats.count else 0.0

    def mean_hammer_cycles(self):
        stats = RunningStats()
        stats.extend(p.hammer_cycles for p in self.pairs)
        return stats.mean if stats.count else 0.0

    def timeline_summary(self):
        """One line per phase with its virtual-cycle span."""
        return "\n".join(
            "  %-12s %12d .. %-12d (%d cycles)"
            % (name, start, end, end - start)
            for name, start, end in self.timeline
        )

    def summary(self):
        lines = [
            "PThammer on %s (%s pages)"
            % (self.machine_name, "super" if self.superpages else "regular"),
            "  prep: tlb=%d llc=%d spray=%d pair-search=%d cycles"
            % (
                self.tlb_prep_cycles,
                self.llc_prep_cycles,
                self.spray_cycles,
                self.pair_search_cycles,
            ),
            "  pairs: %d candidates, %d same-bank, %d hammered"
            % (self.candidate_pairs, self.same_bank_pairs, len(self.pairs)),
            "  flips: %d (first at %s cycles)"
            % (self.total_flips, self.cycles_to_first_flip),
            "  escalated: %s (%s)"
            % (self.escalated, self.outcome.method if self.outcome else None),
        ]
        if self.degradations:
            lines.append("  degraded: %s" % "; ".join(self.degradations))
        return "\n".join(lines)


class PThammerAttack:
    """Drives the whole attack against one machine via its AttackerView.

    Phase boundaries are recorded as span scopes on the machine's trace
    bus (:mod:`repro.observe`): the depth-0 spans become
    ``report.timeline`` and the per-round ``hammer-round`` spans become
    ``report.round_costs`` — when full event tracing is enabled
    (``machine.trace.enable()``), the same spans let
    :func:`repro.analysis.profile_trace` attribute every TLB/LLC/DRAM
    event to the phase that caused it.
    """

    def __init__(self, attacker, config=None, facts=None):
        self.attacker = attacker
        self.config = config if config is not None else PThammerConfig()
        machine = getattr(attacker, "_machine", None)
        #: The machine's trace bus; spans are recorded even when event
        #: tracing is off (they cost a handful of appends per phase).
        self.trace = getattr(machine, "trace", None)
        if self.trace is None or self.trace is NULL_TRACE:
            self.trace = TraceBus()
        # Datasheet knowledge for the machine under attack; reading it
        # from the machine config mirrors looking it up in published
        # reverse-engineering results (see repro.core.uarch).
        self.facts = (
            facts
            if facts is not None
            else UarchFacts.from_config(attacker._machine.config)
        )
        self.tlb_builder = TLBEvictionSetBuilder(attacker, self.facts)
        self.threshold = None
        self.pool = None
        self.spray = None
        self.children = []
        #: Self-healing state.  Resilience defaults to "on exactly when
        #: chaos is attached": the quiet path then takes precisely the
        #: accesses it always took, while noisy runs retry, re-verify,
        #: and degrade instead of aborting.
        self.metrics = getattr(machine, "metrics", None)
        self.resilient = (
            self.config.resilience
            if self.config.resilience is not None
            else getattr(machine, "chaos", None) is not None
        )
        self.retry_policy = RetryPolicy(
            max_attempts=self.config.retry_attempts,
            base_cycles=self.config.retry_base_cycles,
        )
        #: phase name -> "done"; the resumable state-machine record.
        self.phase_state = {}
        self._budget = None
        self._llc_builder = None
        self._llc_set_size = None
        self._massaged = False
        self._pairs = None
        self._llc_sets = None
        self._last_candidates = None

    # -- recovery plumbing -------------------------------------------------

    def _run_phase(self, name, body):
        """State-machine step: skip if done, retry-on-fault if resilient."""
        if self.phase_state.get(name) == "done":
            if self.metrics is not None:
                self.metrics.inc("recovery.resume")
            if self.trace.enabled:
                self.trace.emit(RECOVERY_RESUME, ATTACK, phase=name)
            return
        if self.resilient:
            config = self.config
            # Every phase gets a fresh budget; cleared even on a blown
            # budget so a resumed run is not poisoned by the stale one.
            self._budget = None
            if config.phase_cycle_budget or config.phase_wall_seconds:
                self._budget = PhaseBudget(
                    self.attacker,
                    config.phase_cycle_budget,
                    config.phase_wall_seconds,
                )
            try:
                run_with_retry(
                    self.attacker,
                    body,
                    self.retry_policy,
                    name,
                    metrics=self.metrics,
                    trace=self.trace,
                    budget=self._budget,
                )
            finally:
                self._budget = None
        else:
            body()
        self.phase_state[name] = "done"

    def _guard(self, operation, phase):
        """Run one pipeline operation; retry recoverable faults when
        resilient, plain call otherwise (zero quiet-path overhead)."""
        if not self.resilient:
            return operation()
        return run_with_retry(
            self.attacker,
            operation,
            self.retry_policy,
            phase,
            metrics=self.metrics,
            trace=self.trace,
            budget=self._budget,
        )

    def _note_recovery(self, event, counter, **details):
        """Record one recovery action as counter + (optional) event.

        Both the family counter (``recovery.rebuild``) and the specific
        one (``recovery.rebuild.llc``) are incremented, so dashboards
        can aggregate without knowing every leaf name.
        """
        if self.metrics is not None:
            family = counter.split(".", 1)[0]
            self.metrics.inc("recovery.%s" % family)
            if family != counter:
                self.metrics.inc("recovery.%s" % counter)
        if self.trace.enabled:
            self.trace.emit(event, ATTACK, **details)

    def checkpoint(self):
        """JSON-safe progress snapshot for the run ledger."""
        return {
            "phases_completed": [
                name for name in ATTACK_PHASES
                if self.phase_state.get(name) == "done"
            ],
            "resilient": self.resilient,
        }

    # -- phases -----------------------------------------------------------

    def prepare(self, report):
        """Phases 1-4: calibration, eviction machinery, spray.

        Composes the granular phase bodies; kept public because the
        experiments and benchmarks drive the phases directly.
        """
        self._phase_calibrate(report)
        self._phase_spray(report)
        self._phase_llc_prep(report)

    def _phase_calibrate(self, report):
        attacker = self.attacker
        config = self.config
        trace = self.trace
        with trace.span("calibrate") as span:
            self.threshold = calibrate_latency_threshold(attacker)
        report.calibrate_cycles = span.cycles

        while len(self.children) < config.cred_spray_processes:
            self.children.append(attacker.spawn())

        if config.massage and not self._massaged:
            with trace.span("massage"):
                MemoryMassage(attacker).soak_small_blocks()
            self._massaged = True

    def _phase_spray(self, report):
        attacker = self.attacker
        config = self.config
        with self.trace.span("spray"):
            if self.spray is None:
                self.spray = PageTableSpray(
                    attacker, config.spray_slots, shm_pages=config.shm_pages
                )
            self.spray.execute()
        # The spray's own cumulative clock, so an execute() resumed
        # after a fault reports the cost of every attempt.
        report.spray_cycles = self.spray.spray_cycles

    def _phase_llc_prep(self, report):
        attacker = self.attacker
        config = self.config
        if self._llc_set_size is None:
            self._llc_set_size = (
                config.llc_eviction_size
                if config.llc_eviction_size is not None
                else self.facts.llc_ways + 1
            )
        # One builder for the attack's lifetime: its region cursor only
        # moves forward, so a retried (or re-grown) preparation claims a
        # fresh buffer instead of colliding with a half-built one.  The
        # guard retries each bounded probe unit individually — pool
        # preparation makes far too many accesses for whole-phase retry
        # to survive realistic per-access fault rates.
        if self._llc_builder is None:
            guard = (
                (lambda operation: self._guard(operation, "llc-prep"))
                if self.resilient
                else None
            )
            self._llc_builder = LLCPoolBuilder(
                attacker, self.facts, self.threshold, self._llc_set_size, guard=guard
            )
        builder = self._llc_builder
        offsets = None if config.full_pool else [
            l1pte_line_offset(self.spray.target_va(0))
        ]
        with self.trace.span("llc-prep"):
            self.pool = builder.prepare(
                superpages=config.superpages, line_offsets=offsets
            )
        report.llc_prep_cycles = self.pool.prep_cycles
        report.tlb_prep_cycles = self.tlb_builder.prep_cycles

    def _grow_llc_pool(self, report, attempts=2):
        """Degradation: retry pool construction with larger sets.

        An empty pool under noise usually means the conflict tests
        misfired (jitter blurring the cached/DRAM boundary), which
        larger-than-minimal eviction sets tolerate.  Distinct from the
        randomised-cache failure mode, where growth cannot help — the
        budget-bounded attempts keep that case from spinning.
        """
        config = self.config
        for _ in range(attempts):
            if self.pool.set_count() > 0:
                return
            self._llc_set_size += config.set_size_growth
            self._note_recovery(
                RECOVERY_FALLBACK,
                "fallback",
                action="grow-llc-sets",
                set_size=self._llc_set_size,
            )
            report.degradations.append(
                "llc eviction sets grown to %d lines" % self._llc_set_size
            )
            builder = self._llc_builder
            builder.set_size = self._llc_set_size
            offsets = None if config.full_pool else [
                l1pte_line_offset(self.spray.target_va(0))
            ]
            with self.trace.span("llc-prep"):
                self.pool = builder.prepare(
                    superpages=config.superpages, line_offsets=offsets
                )
            report.llc_prep_cycles += self.pool.prep_cycles

    def find_pairs(self, report):
        """Phase 5: stride pairs, Algorithm 2, bank verification."""
        attacker = self.attacker
        config = self.config
        start = attacker.rdtsc()
        finder = PairFinder(
            attacker, self.facts, self.spray, self.tlb_builder, config.tlb_eviction_size
        )
        candidates = finder.candidate_pairs(limit=config.pair_sample)
        self._last_candidates = candidates
        report.candidate_pairs = len(candidates)
        llc_sets = {}
        conflict_level = self._guard(finder.conflict_level, "pair-search")
        for pair in candidates:
            def score_pair(pair=pair):
                llc_a = self._llc_set_for(pair.va_a, llc_sets)
                llc_b = self._llc_set_for(pair.va_b, llc_sets)
                if self.resilient:
                    # Ambiguous medians are re-sampled instead of
                    # letting one jittered window flip the verdict.
                    finder.conflict_score_adaptive(
                        pair, llc_a, llc_b, conflict_level
                    )
                else:
                    finder.conflict_score(pair, llc_a, llc_b)
            self._guard(score_pair, "pair-search")
        if finder.resamples and self.metrics is not None:
            self.metrics.inc("recovery.resample", finder.resamples)
        same_bank, _ = PairFinder.split_by_conflict(candidates, conflict_level)
        if not same_bank:
            # The stride construction found nothing — a bank-hashed
            # DRAM mapping, most likely.  Fall back to DRAMA-style
            # timing-guided pair search (slower, no row-distance
            # guarantee, but bank-correct).
            same_bank = self._guard(
                lambda: finder.search_pairs_by_timing(
                    lambda va: self._llc_set_for(va, llc_sets), conflict_level
                ),
                "pair-search",
            )
        same_bank.sort(key=lambda p: -p.conflict_score)
        report.same_bank_pairs = len(same_bank)
        report.pair_search_cycles = attacker.rdtsc() - start
        report.tlb_prep_cycles = self.tlb_builder.prep_cycles
        return same_bank, llc_sets

    def _llc_set_for(self, target_va, cache):
        """Algorithm-2 selection for one target, memoised per VA."""
        if target_va in cache:
            return cache[target_va]
        chosen, _ = select_llc_eviction_set(
            self.attacker,
            self.pool,
            self.tlb_builder.build(target_va, self.config.tlb_eviction_size),
            target_va,
            sweeps=self.config.llc_sweeps,
        )
        cache[target_va] = chosen
        return chosen

    def hammer_pairs(self, report, pairs, llc_sets):
        """Phase 6: hammer, check, escalate.

        Per-round costs land on the trace bus as ``hammer-round`` spans
        (Figure 6's data); ``report.round_costs`` is derived from them
        on the way out, including the early escalation return.
        """
        first_span = len(self.trace.spans)
        try:
            self._hammer_pairs(report, pairs, llc_sets)
        finally:
            report.round_costs = [
                span.cycles
                for span in self.trace.spans_named(HAMMER_ROUND_SPAN, first_span)
            ]

    def _hammer_pairs(self, report, pairs, llc_sets):
        attacker = self.attacker
        config = self.config
        # Re-entrant: a retried/resumed phase keeps its outcome and
        # skips pairs that were already hammered and recorded.
        outcome = report.outcome if report.outcome is not None else EscalationOutcome()
        report.outcome = outcome
        escalator = PrivilegeEscalator(
            attacker,
            self.spray,
            self.tlb_builder,
            config.tlb_eviction_size,
            max_probe_frames=config.max_probe_frames,
        )
        budget = int(config.windows_per_pair * self.facts.refresh_interval_cycles)
        done = {(record.slot_a, record.slot_b) for record in report.pairs}
        for pair in pairs[: config.max_pairs]:
            if (pair.slot_a, pair.slot_b) in done:
                continue
            if self._guard(
                lambda pair=pair: self._hammer_one(
                    report, pair, llc_sets, escalator, outcome, budget
                ),
                "hammer-check",
            ):
                return
        return

    def _hammer_one(self, report, pair, llc_sets, escalator, outcome, budget):
        """Hammer/check one pair; returns True on escalation."""
        attacker = self.attacker
        config = self.config
        single_sided = pair.slot_a == pair.slot_b
        record = PairRecord(pair.slot_a, pair.slot_b, pair.conflict_score)
        start = attacker.rdtsc()
        if self.resilient:
            # Pre-hammer health check: noise may have decayed the
            # eviction machinery since selection.
            self._reverify_target(pair.va_a, llc_sets)
            if not single_sided:
                self._reverify_target(pair.va_b, llc_sets)
        # Faults inside a burst are retried one round at a time (a whole
        # burst is too many accesses for burst-level retry to survive).
        guard = (
            (lambda operation: self._guard(operation, "hammer-check"))
            if self.resilient
            else None
        )
        target_a = HammerTarget(
            pair.va_a,
            self.tlb_builder.build(pair.va_a, config.tlb_eviction_size),
            llc_sets[pair.va_a],
        )
        targets = [target_a]
        if not single_sided:
            targets.append(
                HammerTarget(
                    pair.va_b,
                    self.tlb_builder.build(pair.va_b, config.tlb_eviction_size),
                    llc_sets[pair.va_b],
                )
            )
        if config.pattern is not None:
            compiled = compile_pattern(
                get_pattern(config.pattern),
                targets,
                llc_sweeps=config.llc_sweeps,
                refresh_interval=self.facts.refresh_interval_cycles,
            )
            hammer = PatternHammer(
                attacker, compiled, trace=self.trace, guard=guard
            )
        elif single_sided:
            hammer = SingleSidedHammer(
                attacker,
                target_a,
                llc_sweeps=config.llc_sweeps,
                trace=self.trace,
                guard=guard,
            )
        else:
            hammer = DoubleSidedHammer(
                attacker,
                targets[0],
                targets[1],
                llc_sweeps=config.llc_sweeps,
                trace=self.trace,
                guard=guard,
            )
        record.selection_cycles = attacker.rdtsc() - start

        start = attacker.rdtsc()
        costs = hammer.run_for_cycles(budget)
        record.hammer_cycles = attacker.rdtsc() - start
        record.rounds = len(costs)
        if costs:
            record.round_cost_mean = sum(costs) / len(costs)

        start = attacker.rdtsc()
        mismatches = self._safe_scan()
        record.check_cycles = attacker.rdtsc() - start
        record.flips_found = len(mismatches)
        report.pairs.append(record)
        if mismatches and report.cycles_to_first_flip is None:
            report.cycles_to_first_flip = attacker.rdtsc()
        if escalator.process_mismatches(mismatches, outcome):
            report.cycles_to_escalation = attacker.rdtsc()
            return True
        return False

    def _reverify_target(self, target_va, llc_sets):
        """Re-verify (and rebuild on failure) one target's eviction sets."""
        config = self.config
        tlb_set = self.tlb_builder.build(target_va, config.tlb_eviction_size)
        if not self.tlb_builder.verify(target_va, tlb_set):
            tlb_set = self.tlb_builder.rebuild(target_va, config.tlb_eviction_size)
            self._note_recovery(
                RECOVERY_REBUILD, "rebuild.tlb", target=target_va, kind="tlb-set"
            )
        llc_set = llc_sets.get(target_va)
        if llc_set is None:
            return
        flood = self.tlb_builder.build_flood()
        if verify_eviction_set(
            self.attacker,
            self.threshold,
            llc_set,
            lambda: self.tlb_builder.flush(flood),
            target_va,
            sweeps=config.llc_sweeps,
        ):
            return
        # The chosen set stopped evicting the target's L1PTE (e.g. the
        # L1PT migrated under churn).  Rebuild the offset's pool sets
        # and re-select; keep the stale set if the rebuild comes up
        # empty — weaker pressure still beats aborting.
        offset = l1pte_line_offset(target_va)
        if self._llc_builder is not None:
            fresh = self._llc_builder.rebuild_offset(config.superpages, offset)
            if fresh:
                self.pool.replace_offset(offset, fresh)
        llc_sets.pop(target_va, None)
        try:
            self._llc_set_for(target_va, llc_sets)
        except LookupError:
            llc_sets[target_va] = llc_set
        self._note_recovery(
            RECOVERY_REBUILD, "rebuild.llc", target=target_va, kind="llc-set"
        )

    def _safe_scan(self):
        """Spray scan; unreadable pages surface as value-None mismatches."""
        return self.spray.scan()

    def _do_pair_search(self, report):
        self._pairs, self._llc_sets = self.find_pairs(report)

    def _single_sided_candidates(self, report):
        """Degradation: one-sided targets from the best-scored candidates.

        When no same-bank pair survives verification (bank-hashed DRAM
        plus a failed timing search, or noise drowning the row-conflict
        channel), hammering the strongest candidates single-sided still
        accrues disturbance — weaker than the double-sided construction
        but strictly better than aborting.
        """
        scored = [
            pair
            for pair in (self._last_candidates or [])
            if pair.conflict_score is not None
        ]
        scored.sort(key=lambda pair: -pair.conflict_score)
        if not scored:
            return []
        self._note_recovery(RECOVERY_FALLBACK, "fallback", action="single-sided")
        report.degradations.append("single-sided hammering (no verified pairs)")
        singles = []
        for pair in scored[: self.config.max_pairs]:
            single = CandidatePair(pair.slot_a, pair.slot_a, pair.va_a, pair.va_a)
            single.conflict_score = pair.conflict_score
            singles.append(single)
        return singles

    # -- entry point --------------------------------------------------------

    def run(self):
        """Run the complete attack; returns the :class:`PThammerReport`.

        The phases of :data:`ATTACK_PHASES` run as a resumable state
        machine: with resilience on, recoverable faults are retried
        under backoff, decayed eviction sets are re-verified and
        rebuilt, and the pipeline degrades (larger eviction sets,
        single-sided hammering) instead of aborting.  Calling ``run``
        again on the same object after an interruption skips completed
        phases (``recovery.resume``).

        A machine whose caches defeat eviction-set construction (e.g.
        CEASER/ScatterCache-style index randomisation, Section V) makes
        the attack fail gracefully: the report carries the reason and
        ``escalated`` stays False.
        """
        report = PThammerReport(
            machine_name=self.facts_name(), superpages=self.config.superpages
        )
        trace = self.trace
        first_span = len(trace.spans)
        try:
            with trace.span("prepare"):
                self._run_phase("calibrate", lambda: self._phase_calibrate(report))
                self._run_phase("spray", lambda: self._phase_spray(report))
                self._run_phase("llc-prep", lambda: self._phase_llc_prep(report))
            if self.resilient and self.pool.set_count() == 0:
                self._grow_llc_pool(report)
            if self.pool.set_count() == 0:
                report.outcome = EscalationOutcome()
                report.outcome.note(
                    "LLC eviction-set construction failed: no congruent line "
                    "groups found (randomised cache indexing defeats the attack)"
                )
                return report
            try:
                with trace.span("pair-search"):
                    self._run_phase(
                        "pair-search", lambda: self._do_pair_search(report)
                    )
            except LookupError as error:
                report.outcome = EscalationOutcome()
                report.outcome.note("eviction-set selection failed: %s" % error)
                return report
            pairs, llc_sets = self._pairs, self._llc_sets
            if not pairs and self.resilient and self.config.allow_single_sided:
                pairs = self._single_sided_candidates(report)
            with trace.span("hammer-check"):
                self._run_phase(
                    "hammer-check",
                    lambda: self.hammer_pairs(report, pairs, llc_sets),
                )
            return report
        except PhaseBudgetExceeded as error:
            # A blown budget ends the run cleanly with partial progress;
            # the phase state is kept, so a later run() resumes.
            if report.outcome is None:
                report.outcome = EscalationOutcome()
            report.outcome.note("phase budget exhausted: %s" % error)
            return report
        finally:
            report.phases_completed = [
                name
                for name in ATTACK_PHASES
                if self.phase_state.get(name) == "done"
            ]
            # The machine-readable Table-II breakdown: this run's
            # top-level phase scopes, straight off the trace.
            report.timeline = [
                (span.name, span.start, span.end)
                for span in trace.spans[first_span:]
                if span.depth == 0 and span.end is not None
            ]

    def facts_name(self):
        """Best-effort machine name for reports."""
        machine = getattr(self.attacker, "_machine", None)
        return machine.config.name if machine is not None else "unknown"
