"""TLB eviction: the paper's Algorithm 1 and the runtime eviction sets.

The TLB cannot be flushed from user space (``invlpg`` is privileged),
so PThammer evicts translations by contention.  Because the vpn -> set
mappings are public (Gras et al.), the attacker *constructs* congruent
pages by mapping them at computed virtual page numbers — "it introduces
no false positives" (Section IV-C).

An eviction set for a target has the paper's two-subset structure
(Section III-C):

* the **L1 subset**: pages sharing the target's L1-dTLB set, which
  thrash that 4-way set and evict the target's first-level entry;
* the **L2 subset**: pages sharing the target's L2-sTLB set *and* its
  L1 set.  The double congruence matters: a page that stayed resident
  in the L1 dTLB would never probe the sTLB at all, exerting no
  second-level pressure.  Sharing the already-thrashed L1 set
  guarantees these pages miss L1 and contend in the target's sTLB set.

Because the replacement policy is not true LRU, associativity-many
pages per level are not reliably enough — hence Algorithm 1, which
finds the minimal size empirically (12 on the paper's machines).
"""

from repro.core.layout import TLB_EVICTION_REGION


class TLBEvictionSetBuilder:
    """Maps pages at computed VPNs and hands out per-target eviction sets.

    Building the per-machine page pool is the "TLB preparation" cost in
    the paper's Table II (a few milliseconds); ``prep_cycles``
    accumulates the simulated cost of the mmap+populate calls.
    """

    def __init__(self, attacker, facts, region_base=TLB_EVICTION_REGION):
        self.attacker = attacker
        self.facts = facts
        self._next_vpn = region_base >> 12
        self._cache = {}
        self.prep_cycles = 0
        self.pages_mapped = 0
        #: Sets rebuilt after a failed self-test (recovery accounting).
        self.rebuilds = 0

    #: Byte offset used when touching eviction pages.  Mid-page rather
    #: than offset 0 so the pages' *data* lines occupy LLC set-class 32,
    #: away from class 0 where every page-aligned probe target lives —
    #: otherwise each TLB sweep would also evict the timing probes'
    #: data lines and wash out the latency signals.
    TOUCH_OFFSET = 2048

    def _claim_page(self, vpn):
        """Map one page at exactly ``vpn``; returns its touch address."""
        va = vpn << 12
        self.attacker.mmap(1, at=va, populate=True)
        touch_va = va + self.TOUCH_OFFSET
        self.attacker.touch(touch_va)  # warm the translation path once
        self.pages_mapped += 1
        return touch_va

    def _find_vpns(self, count, predicate):
        """The next ``count`` unused VPNs satisfying ``predicate``."""
        found = []
        vpn = self._next_vpn
        while len(found) < count:
            if predicate(vpn):
                found.append(vpn)
            vpn += 1
        self._next_vpn = vpn
        return found

    def _target_pool(self, vpn):
        """Per-target page lists (extended on demand, so sets nest).

        Nesting mirrors the paper's Algorithm 1, which *trims* one set
        rather than building independent ones: the size-``n`` set is a
        prefix of the size-``n+1`` set.
        """
        pool = self._cache.get(vpn)
        if pool is None:
            pool = {"l1": [], "l2": []}
            self._cache[vpn] = pool
        return pool

    def _extend(self, pool, subset, vpn, needed):
        facts = self.facts
        t1 = facts.tlb_l1_set_of(vpn)
        if subset == "l1":
            predicate = lambda v: facts.tlb_l1_set_of(v) == t1
        else:
            t2 = facts.tlb_l2_set_of(vpn)
            predicate = (
                lambda v: facts.tlb_l1_set_of(v) == t1
                and facts.tlb_l2_set_of(v) == t2
            )
        pages = pool[subset]
        while len(pages) < needed:
            new_vpn = self._find_vpns(1, predicate)[0]
            pages.append(self._claim_page(new_vpn))

    def build(self, target_va, size):
        """An eviction set of ``size`` pages for ``target_va``.

        Sets of different sizes for one target share pages (prefixes),
        matching the trim-one-page-at-a-time search of Algorithm 1.
        """
        vpn = target_va >> 12
        start = self.attacker.rdtsc()
        l2_take = size // 2
        l1_take = size - l2_take
        pool = self._target_pool(vpn)
        self._extend(pool, "l1", vpn, l1_take)
        self._extend(pool, "l2", vpn, l2_take)
        self.prep_cycles += self.attacker.rdtsc() - start
        return pool["l1"][:l1_take] + pool["l2"][:l2_take]

    def build_flood(self, per_set=None):
        """A page set that sweeps *every* TLB set (a user-space flush).

        Covers all L1 sets and all L2 sets with ``per_set`` pages each;
        one sweep approximates a full TLB flush.  Built once and cached
        — the escalation rescan uses it to clear stale translations
        before re-reading the spray.
        """
        cached = self._cache.get("flood")
        if cached is not None:
            return cached
        start = self.attacker.rdtsc()
        facts = self.facts
        if per_set is None:
            per_set = facts.tlb_l1_ways + 2
        pages = []
        for l1_set in range(facts.tlb_l1_sets):
            vpns = self._find_vpns(
                per_set, lambda v: facts.tlb_l1_set_of(v) == l1_set
            )
            pages.extend(self._claim_page(v) for v in vpns)
        for l2_set in range(facts.tlb_l2_sets):
            vpns = self._find_vpns(
                per_set, lambda v: facts.tlb_l2_set_of(v) == l2_set
            )
            pages.extend(self._claim_page(v) for v in vpns)
        self.prep_cycles += self.attacker.rdtsc() - start
        self._cache["flood"] = pages
        return pages

    def build_huge(self, target_va, size):
        """An eviction set for a 2 MiB-mapped target (superpage setting).

        Superpage translations live in the separate 2 MiB dTLB, so the
        eviction pages must themselves be superpages congruent in that
        structure (the Algorithm-1 note about huge-page targets).
        """
        spn = target_va >> 21
        key = ("huge", spn, size)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        start = self.attacker.rdtsc()
        facts = self.facts
        target_set = facts.tlb_huge_set_of(spn)
        vas = []
        # Claim whole superpages at congruent superpage numbers.
        next_spn = (self._next_vpn >> 9) + 1
        while len(vas) < size:
            if facts.tlb_huge_set_of(next_spn) == target_set:
                va = next_spn << 21
                self.attacker.mmap(1, at=va, huge=True, populate=True)
                self.attacker.touch(va)
                vas.append(va)
            next_spn += 1
        self._next_vpn = next_spn << 9
        self.prep_cycles += self.attacker.rdtsc() - start
        self._cache[key] = vas
        return vas

    def flush(self, eviction_set):
        """Sweep an eviction set, evicting the associated TLB entry."""
        self.attacker.touch_many(eviction_set)

    def verify(self, target_va, eviction_set, trials=4):
        """Attack-side self-test: can the set still evict the target?

        No PMCs needed (unlike :func:`profile_tlb_miss_rate`): prime
        the target's translation, take a TLB-hit latency baseline,
        sweep the set, and re-time the target.  An evicted translation
        forces a page-table walk, so the post-sweep access is strictly
        slower than the warm one.

        One successful eviction passes: congruence is computed from the
        VPNs, which system noise cannot change, so the only real
        failure mode is a set whose pages died outright.  (Repeated
        identical trials can reach a replacement-policy steady state
        where resident sweep pages hit without exerting pressure — the
        hammer loop's richer interleaving does not — so demanding a
        majority here would condemn healthy sets.)
        """
        attacker = self.attacker
        for _ in range(trials):
            attacker.touch(target_va)  # prime the translation
            warm = attacker.timed_read(target_va)
            self.flush(eviction_set)
            if attacker.timed_read(target_va) > warm:
                return True
        return False

    def rebuild(self, target_va, size):
        """Discard the target's cached pages and build a fresh set.

        Used when :meth:`verify` fails (e.g. the set's pages lost their
        mappings to page-table churn and re-faulted onto frames whose
        translations no longer contend as expected).  New pages are
        claimed at fresh congruent VPNs; the stale ones are simply
        abandoned.
        """
        self._cache.pop(target_va >> 12, None)
        self.rebuilds += 1
        return self.build(target_va, size)


def profile_tlb_miss_rate(attacker, inspector, target_va, eviction_set, trials=40):
    """Fraction of trials where sweeping the set evicts the target's entry.

    This is Algorithm 1's ``profile_tlb_set``: prime the target's
    translation, sweep the candidate set, then re-access the target and
    ask the PMCs (``dtlb_load_misses.miss_causes_a_walk``) whether the
    access walked.  Evaluation-only: the PMCs need the kernel module.
    """
    misses = 0
    attacker.touch(target_va)
    for _ in range(trials):
        attacker.touch_many(eviction_set)
        before = inspector.perf_snapshot()
        attacker.touch(target_va)
        if inspector.tlb_miss_delta(before) > 0:
            misses += 1
    return misses / trials


def find_minimal_tlb_eviction_size(
    attacker, inspector, builder, target_va=None, trials=40, tolerance=0.08
):
    """Algorithm 1: the smallest eviction-set size that still evicts.

    Starts from a set twice the combined TLB associativity (16 pages on
    the paper's machines), measures the achievable miss rate as the
    threshold, then trims until effectiveness degrades; the last size
    before degradation is the answer (12 on all three machines).
    """
    facts = builder.facts
    if target_va is None:
        target_va = attacker.mmap(1, populate=True)
    size = 2 * facts.tlb_total_ways
    threshold = profile_tlb_miss_rate(
        attacker, inspector, target_va, builder.build(target_va, size), trials
    )
    while size > 1:
        candidate = builder.build(target_va, size - 1)
        rate = profile_tlb_miss_rate(attacker, inspector, target_va, candidate, trials)
        if rate < threshold - tolerance:
            break
        size -= 1
    return size


def tlb_miss_rate_by_size(attacker, inspector, builder, sizes, target_va=None, trials=40):
    """Figure 3 series: measured TLB miss rate per eviction-set size."""
    if target_va is None:
        target_va = attacker.mmap(1, populate=True)
    rates = {}
    for size in sizes:
        eviction_set = builder.build(target_va, size)
        inspector.quiesce_caches()  # keep sweep points independent
        rates[size] = profile_tlb_miss_rate(
            attacker, inspector, target_va, eviction_set, trials
        )
    return rates
