"""Page-table spraying (Section III-B, Figure 7).

The attacker maps a handful of shared user pages over an enormous
contiguous stretch of virtual space — 2 MiB *slots*, each fully
populated, so the kernel creates one **completely filled** Level-1 page
table per slot.  A few user frames thus conjure megabytes of kernel
L1PT pages whose every word is a PTE:

* any victim row between two hammered L1PT rows likely contains L1PTs,
* almost every bit flip in such a row perturbs a live PTE, and
* a frame-bit flip detectably remaps one sprayed virtual page (its
  marker disappears on the next scan).

Each slot cycles its backing pages through the shm object with a
per-slot offset, so any remap lands on a page whose marker differs from
the expected one with probability ``(shm_pages - 1) / shm_pages``.

Hammer targets use page index 8 of a slot: page-aligned (page offset 0)
with L1PTE line offset 1 — satisfying both Algorithm-2 aliasing
requirements (Section III-D).
"""

from repro.core.layout import SPRAY_REGION
from repro.params import PAGE_SIZE, PTES_PER_TABLE, SUPERPAGE_SIZE
from repro.utils.rng import hash64

#: Slot page index used as the hammer target (L1PTE line offset 1).
TARGET_PAGE_INDEX = 8


def marker_value(shm_page_index):
    """The recognisable fill word of one sprayed user page."""
    return hash64(0x5B4A7, shm_page_index) | 1  # never zero


class SprayMismatch:
    """One sprayed page whose content no longer matches its marker."""

    __slots__ = ("slot", "page", "vaddr", "value")

    def __init__(self, slot, page, vaddr, value):
        self.slot = slot
        self.page = page
        self.vaddr = vaddr
        self.value = value

    def __repr__(self):
        return "SprayMismatch(slot=%d, page=%d, va=0x%x, value=%s)" % (
            self.slot,
            self.page,
            self.vaddr,
            self.value,
        )


class PageTableSpray:
    """The sprayed region: mapping, marker writes, and integrity scans."""

    def __init__(self, attacker, slots, shm_pages=8, base=SPRAY_REGION):
        if shm_pages < 2:
            raise ValueError("need at least two shm pages for remap detection")
        self.attacker = attacker
        self.slots = slots
        self.shm_pages = shm_pages
        #: Pages populated per slot: the whole 2 MiB (a full L1PT).
        self.pages_per_slot = PTES_PER_TABLE
        self.base = base
        self.shm = None
        self.spray_cycles = 0
        self._markers = [marker_value(i) for i in range(shm_pages)]
        #: Resume cursor: slots already mapped.  ``execute`` is safe to
        #: call again after a recoverable fault — completed slots are
        #: skipped (re-mmapping a fixed address would fault) and the
        #: idempotent marker writes are redone only if unfinished.
        self._mapped_slots = 0
        self._markers_written = False

    def slot_base(self, slot):
        """Virtual base address of a slot's 2 MiB region."""
        return self.base + slot * SUPERPAGE_SIZE

    def page_va(self, slot, page):
        """Virtual address of page ``page`` (0..511) of a slot."""
        return self.slot_base(slot) + page * PAGE_SIZE

    def expected_marker(self, slot, page):
        """Marker that slot/page should read if its L1PTE is intact."""
        return self._markers[(slot + page) % self.shm_pages]

    def execute(self):
        """Map every slot fully and write the markers.

        Each slot costs the kernel one completely-populated L1PT page.
        Restartable: interrupted runs pick up at the first unmapped
        slot, and ``spray_cycles`` accumulates across attempts.
        """
        start = self.attacker.rdtsc()
        if self.shm is None:
            self.shm = self.attacker.create_shm(self.shm_pages)
        for slot in range(self._mapped_slots, self.slots):
            self.attacker.mmap(
                self.pages_per_slot,
                shm=self.shm,
                shm_offset=slot % self.shm_pages,
                at=self.slot_base(slot),
                populate=True,
            )
            self._mapped_slots = slot + 1
        if not self._markers_written:
            # Slot 0's first shm_pages pages cover every shm page once.
            for page in range(self.shm_pages):
                va = self.page_va(0, page)
                value = self.expected_marker(0, page)
                for word in range(0, PAGE_SIZE, 8):
                    self.attacker.write(va + word, value)
            self._markers_written = True
        self.spray_cycles += self.attacker.rdtsc() - start
        return self

    def scan(self, slot_range=None):
        """Compare every sprayed page's first word against its marker.

        The paper's bit-flip check (Table II "Check Time"): a bulk
        sweep over the whole sprayed region.  Returns the mismatching
        pages; unreadable pages (killed by an unlucky flip) are
        reported with ``value=None``.
        """
        slots = range(self.slots) if slot_range is None else slot_range
        vas = []
        expect = []
        meta = []
        for slot in slots:
            for page in range(self.pages_per_slot):
                vas.append(self.page_va(slot, page))
                expect.append(self.expected_marker(slot, page))
                meta.append((slot, page))
        values = self.attacker.read_bulk(vas)
        mismatches = []
        for (slot, page), va, value, expected in zip(meta, vas, values, expect):
            if value != expected:
                mismatches.append(SprayMismatch(slot, page, va, value))
        return mismatches

    def target_va(self, slot):
        """The hammer-target address of a slot (page index 8).

        Page-aligned with page offset 0, and its L1PTE line offset is
        1 — satisfying both Algorithm-2 requirements.
        """
        return self.page_va(slot, TARGET_PAGE_INDEX)
