"""Memory massaging (Cheng et al., CATTmew) — used in Section IV-G1.

"We use a technique due to Cheng et al. for increasing the
concentration of L1PTEs in memory.  Specifically, we exploit the buddy
allocator in the Linux kernel by first exhausting all small blocks of
memory and then starting to allocate L1PTEs."

The attacker allocates (and touches) a large number of small anonymous
pages, soaking up every fragmented low-order block the buddy allocator
holds; the page-table spray that follows is then served from pristine
high-order blocks and comes out physically contiguous — no seams, so
nearly every stride pair verifies and every victim row is packed with
L1PTs.  The soak pages are kept mapped for the attack's duration (they
cost the attacker only its own RSS).
"""

#: VA region for the soak pages, clear of the other attack regions.
MASSAGE_REGION = 0x5000_0000_0000


class MemoryMassage:
    """Exhausts small buddy blocks ahead of the page-table spray."""

    def __init__(self, attacker, batch_pages=64, max_batches=512):
        self.attacker = attacker
        self.batch_pages = batch_pages
        self.max_batches = max_batches
        self.pages_soaked = 0
        self.massage_cycles = 0

    def soak_small_blocks(self, target_pages=None):
        """Allocate small-page batches until the fragmented mass is gone.

        Without pagemap the attacker cannot *see* fragmentation, so it
        simply soaks a calibrated amount — the paper sizes this against
        total RAM; we default to ~2 % of physical memory, far beyond
        any realistic boot-time fragmentation.
        """
        attacker = self.attacker
        start = attacker.rdtsc()
        if target_pages is None:
            dram_bytes = attacker._machine.config.dram.size_bytes
            target_pages = max(self.batch_pages, (dram_bytes // 4096) // 50)
        batches = min(self.max_batches, -(-target_pages // self.batch_pages))
        for batch in range(batches):
            base = MASSAGE_REGION + batch * self.batch_pages * 2 * 4096
            attacker.mmap(self.batch_pages, at=base, populate=True)
            attacker.touch(base)  # commit the batch (and tick the clock)
            self.pages_soaked += self.batch_pages
        self.massage_cycles = attacker.rdtsc() - start
        return self.pages_soaked
