"""From one bit flip to root (Sections IV-F and IV-G3).

A frame-bit flip in a victim L1PTE silently remaps one sprayed virtual
page.  The scan finds it; this module decides what the attacker gained:

* **L1PT capture** — the newly-mapped frame is another sprayed Level-1
  page table (recognisable by its PTE pattern at the spray's entry
  indices).  Writing entries through the captured page gives an
  arbitrary physical-mapping primitive; the attacker locates its own
  ``struct cred`` and zeroes the uid (Figure 7's escalation).
* **cred capture** — under CTA a corrupted L1PTE can only point *down*,
  so L1PT capture is impossible; but the frame may land in a sprayed
  kernel cred slab, recognisable by the cred magic — the paper's CTA
  bypass.
* **junk** — the frame is uninteresting; keep hammering.
"""

from repro.core.spray import TARGET_PAGE_INDEX
from repro.errors import SegmentationFault
from repro.kernel.cred import CRED_MAGIC, CRED_SIZE, CREDS_PER_PAGE
from repro.mmu.pte import looks_like_pte, make_pte
from repro.params import PTES_PER_TABLE

#: Classification results for a captured page.
CAPTURE_L1PT = "l1pt"
CAPTURE_CRED = "cred"
CAPTURE_JUNK = "junk"


class EscalationOutcome:
    """What privilege-escalation attempts achieved so far."""

    def __init__(self):
        self.success = False
        self.method = None
        self.flips_observed = 0
        self.captures = {CAPTURE_L1PT: 0, CAPTURE_CRED: 0, CAPTURE_JUNK: 0}
        self.details = []
        #: pid whose cred was rewritten to root (attacker or a child).
        self.rooted_pid = None

    def note(self, message):
        self.details.append(message)

    def __repr__(self):
        return "EscalationOutcome(success=%s, method=%s, flips=%d)" % (
            self.success,
            self.method,
            self.flips_observed,
        )


class PrivilegeEscalator:
    """Turns spray mismatches into privilege escalation attempts."""

    def __init__(self, attacker, spray, tlb_builder, tlb_set_size, max_probe_frames=4096):
        self.attacker = attacker
        self.spray = spray
        self.tlb_builder = tlb_builder
        self.tlb_set_size = tlb_set_size
        self.max_probe_frames = max_probe_frames
        # Mismatches persist across scans; process each page only once.
        self._seen = set()
        # Slots whose tables the escalation clobbered on purpose.
        self._sacrificed = set()

    # -- classification ---------------------------------------------------

    #: Words sampled when testing a captured page for the L1PT pattern.
    PTE_SAMPLE_WORDS = 8

    def classify_capture(self, vaddr):
        """Decide what kind of page a remapped VA now exposes.

        A captured sprayed L1PT is fully populated, so a handful of
        sampled words all look like PTEs; cred and user pages do not.
        """
        read = self.attacker.read
        pte_like = 0
        for k in range(self.PTE_SAMPLE_WORDS):
            word = read(vaddr + (TARGET_PAGE_INDEX + k) * 8)
            if looks_like_pte(word):
                pte_like += 1
        if pte_like >= self.PTE_SAMPLE_WORDS - 1:
            return CAPTURE_L1PT
        if self._find_cred_slots(vaddr):
            return CAPTURE_CRED
        return CAPTURE_JUNK

    def _find_cred_slots(self, vaddr):
        """Offsets of cred objects within the captured page."""
        read = self.attacker.read
        slots = []
        for index in range(CREDS_PER_PAGE):
            if read(vaddr + index * CRED_SIZE) == CRED_MAGIC:
                slots.append(index * CRED_SIZE)
        return slots

    # -- CTA-style escalation: the captured page holds creds --------------

    def escalate_via_cred_page(self, vaddr, outcome):
        """Rewrite the uid of a family cred found in the captured page.

        Any cred with the attacker's uid belongs to one of its sprayed
        children; zeroing it makes that child root (the child then acts
        for the attacker).  The rewritten pid is recorded so evaluation
        code can verify against kernel ground truth.
        """
        attacker = self.attacker
        my_uid = attacker.getuid()
        for offset in self._find_cred_slots(vaddr):
            if attacker.read(vaddr + offset + 8) == my_uid:
                pid = attacker.read(vaddr + offset + 24)
                attacker.write(vaddr + offset + 8, 0)
                if attacker.read(vaddr + offset + 8) != 0:
                    continue
                outcome.rooted_pid = pid
                outcome.note(
                    "rewrote cred of pid %d (offset 0x%x) to uid 0" % (pid, offset)
                )
                return True
        return False

    # -- stock/CATT escalation: the captured page is an L1PT ---------------

    def escalate_via_l1pt(self, captured_va, outcome):
        """Figure 7: use a captured L1PT as an arbitrary-mapping primitive.

        1. Learn which 2 MiB region of our own address space the
           captured table serves — by rescanning the spray after a probe
           write (the paper's "modify ... and check for further
           changes") when the table has the spray's fully-populated
           signature, or by matching its present-entry pattern against
           our own mappings otherwise (placement defenses concentrate
           *all* page tables, so captures often serve non-spray
           regions).
        2. Walk physical frames through the served mapping until the
           attacker's own cred page appears; zero the uid.
        """
        present = self._present_entries(captured_va)
        if len(present) == PTES_PER_TABLE:
            window_va = self._discover_served_slot(captured_va, outcome)
            indices = list(range(PTES_PER_TABLE))
        else:
            window_va, entry_index = self._discover_sparse_region(
                captured_va, present, outcome
            )
            indices = sorted(present)
        if window_va is None:
            return False
        return self._scan_frames_for_cred(
            captured_va, window_va & ~0x1FFFFF, indices, outcome
        )

    def _present_entries(self, captured_va):
        """Indices of present-looking entries in the captured table."""
        read = self.attacker.read
        return {
            index
            for index in range(PTES_PER_TABLE)
            if read(captured_va + index * 8) & 1
        }

    def _write_captured_pte(self, captured_va, frame, entry_index=TARGET_PAGE_INDEX):
        """Point one entry of the captured table at ``frame``."""
        self.attacker.write(captured_va + entry_index * 8, make_pte(frame))

    def _discover_sparse_region(self, captured_va, present, outcome):
        """Match a sparsely-populated captured table to one of our regions.

        The attacker knows its own virtual layout, so the set of
        populated page indices within a 2 MiB region is a fingerprint.
        Ambiguity is resolved with a clear-and-heal probe: zero one
        entry, touch the candidate page — only the truly served page
        faults and gets healed by the kernel, rewriting the entry.
        """
        if not present:
            outcome.note("captured table has no present entries")
            return None, None
        attacker = self.attacker
        space = attacker.process.address_space
        regions = {}
        for page_va, frame in space.populated.items():
            if frame is None:
                continue
            regions.setdefault(page_va >> 21, set()).add((page_va >> 12) & 511)
        matches = [
            region for region, indices in regions.items() if indices == present
        ]
        if not matches:
            outcome.note("captured table matches none of our regions")
            return None, None
        entry_index = next(iter(present))
        for region in matches:
            candidate_va = (region << 21) | (entry_index << 12)
            if candidate_va == (captured_va & ~0xFFF):
                continue
            attacker.write(captured_va + entry_index * 8, 0)
            for page in self.tlb_builder.build(candidate_va, self.tlb_set_size):
                attacker.touch(page)
            try:
                attacker.touch(candidate_va)
            except SegmentationFault:
                continue
            if attacker.read(captured_va + entry_index * 8) & 1:
                outcome.note(
                    "captured L1PT serves region 0x%x (entry %d)"
                    % (region << 21, entry_index)
                )
                return candidate_va, entry_index
        outcome.note("captured table region could not be confirmed")
        return None, None

    def _discover_served_slot(self, captured_va, outcome):
        """Find the sprayed VA whose mapping the captured L1PT controls."""
        attacker = self.attacker
        spray = self.spray
        # Point the clobbered entry somewhere recognisably wrong; frame 1
        # is firmware-reserved scratch that never holds a spray marker.
        probe_frame = 1
        self._write_captured_pte(captured_va, probe_frame)
        # One full-TLB sweep clears every stale spray translation at
        # once; per-slot eviction sets would cost far more.
        for page in self.tlb_builder.build_flood():
            attacker.touch(page)
        for slot in range(spray.slots):
            va = spray.page_va(slot, TARGET_PAGE_INDEX)
            if va == captured_va:
                continue
            if attacker.read(va) != spray.expected_marker(slot, TARGET_PAGE_INDEX):
                outcome.note("captured L1PT serves spray slot %d" % slot)
                self._sacrificed.add(slot)
                return va
        outcome.note("captured L1PT serves no sprayed slot (likely unsprayed)")
        return None

    def _scan_frames_for_cred(self, captured_va, region_base, indices, outcome):
        """Map frames through the served region until our cred shows.

        Probes *rotate* across the region's page indices: every probe
        rewrites a different entry of the captured table and reads a
        different virtual page, so a stale TLB entry can never mask a
        probe (the same VA is not reused until hundreds of churning
        accesses later).  One flood clears pre-existing translations.
        """
        attacker = self.attacker
        my_uid = attacker.getuid()
        my_pid = attacker.process.pid
        captured_page_index = (captured_va >> 12) & 0x1FF
        rotation = [k for k in indices if k != captured_page_index]
        if not rotation:
            outcome.note("captured table has no usable probe entries")
            return False
        for page in self.tlb_builder.build_flood():
            attacker.touch(page)
        # Short rotations (sparse regions) reuse VAs quickly enough for
        # stale TLB entries to mask probes; sweep an eviction set per
        # probe in that case (the long spray rotation does not need it).
        explicit_evict = len(rotation) < 64
        for frame in range(self.max_probe_frames):
            entry_index = rotation[frame % len(rotation)]
            self._write_captured_pte(captured_va, frame, entry_index)
            window_va = region_base | (entry_index << 12)
            if explicit_evict:
                for page in self.tlb_builder.build(window_va, self.tlb_set_size):
                    attacker.touch(page)
            if attacker.read(window_va) != CRED_MAGIC:
                continue
            for index in range(CREDS_PER_PAGE):
                base = window_va + index * CRED_SIZE
                if attacker.read(base) != CRED_MAGIC:
                    continue
                if (
                    attacker.read(base + 8) == my_uid
                    and attacker.read(base + 24) == my_pid
                ):
                    attacker.write(base + 8, 0)
                    outcome.note(
                        "own cred found in frame %d; uid rewritten" % frame
                    )
                    return True
        outcome.note("frame scan exhausted without finding own cred")
        return False

    # -- entry point --------------------------------------------------------

    def process_mismatches(self, mismatches, outcome):
        """Handle scan results; returns True once escalated."""
        attacker = self.attacker
        for mismatch in mismatches:
            if mismatch.slot in self._sacrificed:
                continue  # collateral of our own PTE rewrites
            key = (mismatch.slot, mismatch.page)
            if key in self._seen:
                continue  # already handled in an earlier scan
            self._seen.add(key)
            outcome.flips_observed += 1
            if mismatch.value is None:
                outcome.captures[CAPTURE_JUNK] += 1
                continue  # the flip killed the slot outright
            kind = self.classify_capture(mismatch.vaddr)
            outcome.captures[kind] += 1
            if kind == CAPTURE_L1PT:
                if self.escalate_via_l1pt(mismatch.vaddr, outcome):
                    # The l1pt path rewrote the attacker's *own* cred;
                    # the kernel must now see it as root.
                    if attacker.getuid() == 0:
                        outcome.success = True
                        outcome.method = CAPTURE_L1PT
                        outcome.rooted_pid = attacker.process.pid
                        return True
            elif kind == CAPTURE_CRED:
                if self.escalate_via_cred_page(mismatch.vaddr, outcome):
                    # A family process's cred was rewritten; evaluation
                    # verifies the pid against kernel ground truth.
                    outcome.success = True
                    outcome.method = CAPTURE_CRED
                    return True
        return False
