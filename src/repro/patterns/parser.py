"""Parser for the hammer-pattern DSL (the inverse of ``unparse``).

The grammar is line-oriented and indentation-significant, in the shape
of the canonical text :meth:`~repro.patterns.model.Pattern.unparse`
emits (see ``docs/PATTERNS.md`` for the full reference)::

    pattern NAME:
      aggressors ROLE [ROLE ...]
      hammer ROLE
      nop COUNT
      sync_ref
      repeat COUNT [rotate SHIFT]:
        <block>
      rotate SHIFT:
        <block>
      interleave:
        group:
          <block>
        group:
          <block>

``#`` starts a comment; blank lines are ignored; any *consistent*
indentation step works (the canonical form uses two spaces).  Errors
raise :class:`~repro.errors.PatternError` carrying the line number.
"""

from repro.errors import PatternError
from repro.patterns.model import (
    Hammer,
    Interleave,
    Nop,
    Pattern,
    Repeat,
    Rotate,
    SyncRef,
)


class _Line:
    __slots__ = ("number", "indent", "tokens", "text")

    def __init__(self, number, indent, tokens, text):
        self.number = number
        self.indent = indent
        self.tokens = tokens
        self.text = text


def _lex(text):
    """Comment-stripped, non-blank lines with indent depth and tokens."""
    lines = []
    for number, raw in enumerate(text.splitlines(), 1):
        code = raw.split("#", 1)[0].rstrip()
        if not code.strip():
            continue
        stripped = code.lstrip(" \t")
        if "\t" in code[: len(code) - len(stripped)]:
            raise PatternError("line %d: indent with spaces, not tabs" % number)
        lines.append(
            _Line(number, len(code) - len(stripped), stripped.split(), stripped)
        )
    return lines


def _fail(line, message):
    raise PatternError("line %d: %s (%r)" % (line.number, message, line.text))


def _int_field(line, token, what, minimum=1):
    try:
        value = int(token)
    except ValueError:
        _fail(line, "%s must be an integer" % what)
    if value < minimum:
        _fail(line, "%s must be >= %d" % (what, minimum))
    return value


class _Parser:
    def __init__(self, lines):
        self.lines = lines
        self.pos = 0

    def peek(self):
        return self.lines[self.pos] if self.pos < len(self.lines) else None

    def next(self):
        line = self.lines[self.pos]
        self.pos += 1
        return line

    # -- blocks ---------------------------------------------------------

    def block(self, parent_indent, allow_group=False):
        """Statements indented more than ``parent_indent``, at one level."""
        first = self.peek()
        if first is None or first.indent <= parent_indent:
            return []
        level = first.indent
        body = []
        while True:
            line = self.peek()
            if line is None or line.indent <= parent_indent:
                return body
            if line.indent != level:
                _fail(line, "inconsistent indentation (expected %d spaces)" % level)
            body.append(self.statement(self.next(), allow_group=allow_group))

    def statement(self, line, allow_group=False):
        head = line.tokens[0]
        if head.endswith(":"):  # block openers carry the colon in token 0
            head = head[:-1]
        if head == "hammer":
            if len(line.tokens) != 2:
                _fail(line, "hammer takes exactly one aggressor role")
            return Hammer(line.tokens[1])
        if head == "nop":
            if len(line.tokens) != 2:
                _fail(line, "nop takes exactly one cycle count")
            return Nop(_int_field(line, line.tokens[1], "nop count"))
        if head == "sync_ref":
            if len(line.tokens) != 1:
                _fail(line, "sync_ref takes no arguments")
            return SyncRef()
        if head == "repeat":
            return self._repeat(line)
        if head == "rotate":
            return self._rotate(line)
        if head == "interleave":
            return self._interleave(line)
        if head == "group" and not allow_group:
            _fail(line, "group blocks are only valid inside interleave")
        _fail(line, "unknown statement %r" % head)

    def _block_header(self, line):
        """Strip the trailing ':' from a block-opening line's tokens."""
        if not line.text.endswith(":"):
            _fail(line, "block statement must end with ':'")
        tokens = line.text[:-1].split()
        return tokens

    def _repeat(self, line):
        tokens = self._block_header(line)
        rotate = 0
        if len(tokens) == 4 and tokens[2] == "rotate":
            rotate = _int_field(line, tokens[3], "repeat rotation", minimum=0)
        elif len(tokens) != 2:
            _fail(line, "expected 'repeat COUNT:' or 'repeat COUNT rotate SHIFT:'")
        count = _int_field(line, tokens[1], "repeat count")
        body = self.block(line.indent)
        if not body:
            _fail(line, "repeat block is empty")
        return Repeat(count, body, rotate=rotate)

    def _rotate(self, line):
        tokens = self._block_header(line)
        if len(tokens) != 2:
            _fail(line, "expected 'rotate SHIFT:'")
        shift = _int_field(line, tokens[1], "rotate shift", minimum=0)
        body = self.block(line.indent)
        if not body:
            _fail(line, "rotate block is empty")
        return Rotate(shift, body)

    def _interleave(self, line):
        tokens = self._block_header(line)
        if len(tokens) != 1:
            _fail(line, "expected 'interleave:'")
        branches = []
        first = self.peek()
        if first is None or first.indent <= line.indent:
            _fail(line, "interleave block is empty")
        level = first.indent
        while True:
            child = self.peek()
            if child is None or child.indent <= line.indent:
                break
            if child.indent != level:
                _fail(child, "inconsistent indentation (expected %d spaces)" % level)
            child = self.next()
            if child.tokens[0].rstrip(":") != "group":
                _fail(child, "interleave children must be 'group:' blocks")
            if self._block_header(child) != ["group"]:
                _fail(child, "expected 'group:'")
            branch = self.block(child.indent)
            if not branch:
                _fail(child, "group block is empty")
            branches.append(branch)
        if len(branches) < 2:
            _fail(line, "interleave needs at least two group blocks")
        return Interleave(branches)


def parse(text):
    """Parse DSL text into a validated :class:`Pattern`."""
    lines = _lex(text)
    if not lines:
        raise PatternError("empty pattern text")
    parser = _Parser(lines)
    header = parser.next()
    if header.indent != 0 or header.tokens[0] != "pattern":
        _fail(header, "pattern text must start with 'pattern NAME:'")
    tokens = parser._block_header(header)
    if len(tokens) != 2:
        _fail(header, "expected 'pattern NAME:'")
    name = tokens[1]
    decl = parser.peek()
    if decl is None or decl.tokens[0] != "aggressors":
        raise PatternError(
            "pattern %r: first statement must declare 'aggressors ...'" % name
        )
    decl = parser.next()
    if len(decl.tokens) < 2:
        _fail(decl, "aggressors declares at least one role")
    roles = decl.tokens[1:]
    body = parser.block(0)
    trailing = parser.peek()
    if trailing is not None:
        _fail(trailing, "statement outside the pattern block")
    try:
        return Pattern(name, roles, body)
    except PatternError:
        raise
