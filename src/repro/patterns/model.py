"""The hammer-pattern AST and its canonical text form.

A pattern is a named program over *aggressor roles*: abstract hammer
slots (``a``, ``b``, ...) that are bound to concrete
:class:`~repro.core.hammer.HammerTarget`\\ s only when the pattern is
compiled against a machine.  The body is a sequence of statements:

* ``hammer ROLE`` — one implicit activation of the role's target
  (TLB-eviction sweep, LLC-eviction sweep(s), probe touch);
* ``nop N`` — burn ``N`` cycles (a delay slot);
* ``sync_ref`` — spin to the next refresh-interval boundary (a
  refresh-synchronisation barrier);
* ``repeat N [rotate K]: <block>`` — unroll the block ``N`` times,
  rotating the unrolled ops left by ``K`` more positions each
  iteration;
* ``rotate K: <block>`` — the block's unrolled ops, rotated left ``K``;
* ``interleave: <group blocks>`` — round-robin merge of the child
  groups' op streams.

Every node unparses to canonical DSL text (:func:`unparse`); the
parser (:mod:`repro.patterns.parser`) is its exact inverse, so
``parse(unparse(p)) == p`` for every valid pattern — the round-trip
the test suite holds the pair to.  Grammar reference and worked
examples: ``docs/PATTERNS.md``.
"""

from repro.errors import PatternError

#: One indentation level in canonical unparsed text.
INDENT = "  "


class Stmt:
    """Base statement; subclasses define ``key()`` for equality."""

    __slots__ = ()

    def key(self):
        raise NotImplementedError

    def __eq__(self, other):
        return type(other) is type(self) and other.key() == self.key()

    def __ne__(self, other):
        return not self.__eq__(other)

    def __hash__(self):
        return hash((type(self).__name__, self.key()))

    def __repr__(self):
        return "%s%r" % (type(self).__name__, self.key())


class Hammer(Stmt):
    """One implicit hammer of an aggressor role's target."""

    __slots__ = ("role",)

    def __init__(self, role):
        self.role = role

    def key(self):
        return (self.role,)

    def unparse(self, depth=0):
        return ["%shammer %s" % (INDENT * depth, self.role)]


class Nop(Stmt):
    """A delay slot: burn ``count`` cycles without touching memory."""

    __slots__ = ("count",)

    def __init__(self, count):
        if not isinstance(count, int) or count < 1:
            raise PatternError("nop count must be a positive integer, got %r" % (count,))
        self.count = count

    def key(self):
        return (self.count,)

    def unparse(self, depth=0):
        return ["%snop %d" % (INDENT * depth, self.count)]


class SyncRef(Stmt):
    """Barrier: spin to the next refresh-interval boundary."""

    __slots__ = ()

    def key(self):
        return ()

    def unparse(self, depth=0):
        return ["%ssync_ref" % (INDENT * depth)]


def _unparse_block(body, depth):
    lines = []
    for stmt in body:
        lines.extend(stmt.unparse(depth))
    return lines


class Repeat(Stmt):
    """Unroll ``body`` ``count`` times; rotate ``rotate`` more each pass."""

    __slots__ = ("count", "body", "rotate")

    def __init__(self, count, body, rotate=0):
        if not isinstance(count, int) or count < 1:
            raise PatternError(
                "repeat count must be a positive integer, got %r" % (count,)
            )
        if not isinstance(rotate, int) or rotate < 0:
            raise PatternError(
                "repeat rotation must be a non-negative integer, got %r" % (rotate,)
            )
        if not body:
            raise PatternError("repeat block must not be empty")
        self.count = count
        self.body = tuple(body)
        self.rotate = rotate

    def key(self):
        return (self.count, self.rotate, self.body)

    def unparse(self, depth=0):
        head = "%srepeat %d" % (INDENT * depth, self.count)
        if self.rotate:
            head += " rotate %d" % self.rotate
        return [head + ":"] + _unparse_block(self.body, depth + 1)


class Rotate(Stmt):
    """The block's unrolled ops, rotated left by ``shift`` positions."""

    __slots__ = ("shift", "body")

    def __init__(self, shift, body):
        if not isinstance(shift, int) or shift < 0:
            raise PatternError(
                "rotate shift must be a non-negative integer, got %r" % (shift,)
            )
        if not body:
            raise PatternError("rotate block must not be empty")
        self.shift = shift
        self.body = tuple(body)

    def key(self):
        return (self.shift, self.body)

    def unparse(self, depth=0):
        head = "%srotate %d:" % (INDENT * depth, self.shift)
        return [head] + _unparse_block(self.body, depth + 1)


class Interleave(Stmt):
    """Round-robin merge of the child groups' unrolled op streams.

    ``branches`` is a tuple of statement tuples; unrolling takes op 0
    of every branch, then op 1 of every branch (skipping exhausted
    branches), and so on — the Blacksmith-style interleaving that
    spreads each branch's activations across the whole round.
    """

    __slots__ = ("branches",)

    def __init__(self, branches):
        branches = tuple(tuple(branch) for branch in branches)
        if len(branches) < 2:
            raise PatternError("interleave needs at least two group blocks")
        if any(not branch for branch in branches):
            raise PatternError("interleave group blocks must not be empty")
        self.branches = branches

    def key(self):
        return (self.branches,)

    def unparse(self, depth=0):
        lines = ["%sinterleave:" % (INDENT * depth)]
        for branch in self.branches:
            lines.append("%sgroup:" % (INDENT * (depth + 1)))
            lines.extend(_unparse_block(branch, depth + 2))
        return lines


class Pattern:
    """A named hammer pattern: aggressor roles plus a statement body."""

    __slots__ = ("name", "roles", "body")

    def __init__(self, name, roles, body):
        self.name = name
        self.roles = tuple(roles)
        self.body = tuple(body)
        self.validate()

    def key(self):
        return (self.name, self.roles, self.body)

    def __eq__(self, other):
        return isinstance(other, Pattern) and other.key() == self.key()

    def __ne__(self, other):
        return not self.__eq__(other)

    def __hash__(self):
        return hash(self.key())

    def __repr__(self):
        return "Pattern(%r, roles=%r, %d stmt(s))" % (
            self.name,
            self.roles,
            len(self.body),
        )

    # -- validation -----------------------------------------------------

    def validate(self):
        """Raise :class:`PatternError` on structural problems."""
        if not _is_name(self.name):
            raise PatternError("invalid pattern name %r" % (self.name,))
        if not self.roles:
            raise PatternError(
                "pattern %r declares no aggressor roles" % self.name
            )
        seen = set()
        for role in self.roles:
            if not _is_name(role):
                raise PatternError(
                    "pattern %r: invalid aggressor role %r" % (self.name, role)
                )
            if role in seen:
                raise PatternError(
                    "pattern %r declares aggressor role %r twice"
                    % (self.name, role)
                )
            seen.add(role)
        if not self.body:
            raise PatternError("pattern %r has an empty body" % self.name)
        hammers = self._check_block(self.body)
        if not hammers:
            raise PatternError(
                "pattern %r never hammers any aggressor" % self.name
            )

    def _check_block(self, body):
        hammers = 0
        for stmt in body:
            if isinstance(stmt, Hammer):
                if stmt.role not in self.roles:
                    raise PatternError(
                        "pattern %r hammers undeclared aggressor role %r "
                        "(declared: %s)"
                        % (self.name, stmt.role, ", ".join(self.roles))
                    )
                hammers += 1
            elif isinstance(stmt, (Repeat, Rotate)):
                hammers += self._check_block(stmt.body)
            elif isinstance(stmt, Interleave):
                for branch in stmt.branches:
                    hammers += self._check_block(branch)
            elif not isinstance(stmt, (Nop, SyncRef)):
                raise PatternError(
                    "pattern %r contains a non-statement object %r"
                    % (self.name, stmt)
                )
        return hammers

    # -- canonical text -------------------------------------------------

    def unparse(self):
        """Canonical DSL text; ``parse(unparse(p)) == p``."""
        lines = ["pattern %s:" % self.name]
        lines.append("%saggressors %s" % (INDENT, " ".join(self.roles)))
        lines.extend(_unparse_block(self.body, 1))
        return "\n".join(lines) + "\n"


def _is_name(token):
    """Identifiers: letters/digits/underscores, not starting with a digit."""
    if not isinstance(token, str) or not token:
        return False
    if not (token[0].isalpha() or token[0] == "_"):
        return False
    return all(ch.isalnum() or ch == "_" for ch in token)


def unparse(pattern):
    """Module-level alias for :meth:`Pattern.unparse`."""
    return pattern.unparse()
