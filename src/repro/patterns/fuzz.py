"""Seeded pattern randomizer — the Blacksmith-style fuzzing hook.

Blacksmith (PAPERS.md) showed that *non-uniform, frequency-varied*
hammer patterns flip bits on DIMMs that survive uniform double-sided
hammering, and found them by fuzzing the pattern space.  This module
is the analogous hook for the implicit-access setting: a
:class:`PatternFuzzer` draws syntactically valid, validated
:class:`~repro.patterns.model.Pattern`\\ s from a seeded
:class:`~repro.utils.rng.DeterministicRng` stream, so a fuzzing
campaign is reproducible from its seed — pattern ``(seed, index)`` is
the same pattern on every machine, every run.

The generator composes the whole DSL surface: hammer bursts over a
random role set, nop delay slots, optional ``sync_ref`` preambles,
and ``repeat``/``rotate``/``interleave`` combinators, within size
bounds that keep one pattern instance comparable in cost to a
double-sided round (campaigns sweep *shape*, not *volume*).

Runnable as an engine campaign: ``repro patternfuzz`` samples a
pattern population, runs each through the full attack, and ranks
shapes by flips produced.
"""

from repro.patterns.model import (
    Hammer,
    Interleave,
    Nop,
    Pattern,
    Repeat,
    Rotate,
    SyncRef,
)
from repro.utils.rng import DeterministicRng, hash64

#: Stream label so fuzzer draws never collide with machine RNG streams.
_STREAM = "pattern-fuzz"

#: Delay-slot cycle counts the fuzzer draws from (powers of two keep
#: the search space small and the unparsed text readable).
_NOP_SLOTS = (16, 32, 64, 128, 256)


class PatternFuzzer:
    """Draws random valid patterns from a seeded stream.

    ``max_roles`` bounds the aggressor-set size (at least 2 so drawn
    patterns can double-side), ``max_ops`` soft-bounds the unrolled
    length of one pattern instance.  ``pattern(index)`` is pure in
    ``(seed, index)``: the fuzzer forks a child RNG stream per index,
    so campaigns can evaluate any subset of the population in any
    order — or in parallel workers — and still agree on what pattern
    ``i`` is.
    """

    def __init__(self, seed, max_roles=4, max_ops=16):
        if max_roles < 2:
            raise ValueError("max_roles must be at least 2, got %r" % (max_roles,))
        if max_ops < 2:
            raise ValueError("max_ops must be at least 2, got %r" % (max_ops,))
        self.seed = seed
        self.max_roles = max_roles
        self.max_ops = max_ops

    def pattern(self, index):
        """The ``index``-th pattern of this seed's population."""
        rng = DeterministicRng(hash64(_STREAM, self.seed, index))
        role_count = rng.randrange(2, self.max_roles + 1)
        roles = tuple("r%d" % i for i in range(role_count))
        name = "fuzz_%d_%d" % (self.seed, index)
        body = []
        if rng.chance(0.25):
            body.append(SyncRef())
        body.extend(self._burst(rng, roles, self.max_ops))
        pattern = Pattern(name, roles, body)
        return pattern

    def patterns(self, count, start=0):
        """Patterns ``start .. start+count`` of the population."""
        return [self.pattern(start + i) for i in range(count)]

    # -- drawing helpers ------------------------------------------------

    def _burst(self, rng, roles, budget):
        """A statement list hammering every role at least once."""
        stmts = []
        # Guarantee validity: open with one hammer of each role in a
        # random rotation, then grow with random statements.
        order = list(roles)
        rng.shuffle(order)
        stmts.extend(Hammer(role) for role in order)
        budget -= len(order)
        while budget > 0:
            draw = rng.random()
            if draw < 0.45:
                stmts.append(Hammer(rng.choice(roles)))
                budget -= 1
            elif draw < 0.65:
                stmts.append(Nop(rng.choice(_NOP_SLOTS)))
                budget -= 1
            elif draw < 0.80 and budget >= 4:
                count = rng.randrange(2, 4)
                inner = self._flat_run(rng, roles, budget // count)
                stmts.append(
                    Repeat(count, inner, rotate=rng.randint(len(inner) + 1))
                )
                budget -= count * len(inner)
            elif draw < 0.90 and budget >= 4:
                inner = self._flat_run(rng, roles, budget)
                stmts.append(Rotate(rng.randrange(1, len(inner) + 1), inner))
                budget -= len(inner)
            elif budget >= 4:
                half = max(1, budget // 4)
                branches = [
                    self._flat_run(rng, roles, half),
                    self._flat_run(rng, roles, half),
                ]
                stmts.append(Interleave(branches))
                budget -= sum(len(branch) for branch in branches)
            else:
                stmts.append(Hammer(rng.choice(roles)))
                budget -= 1
        return stmts

    def _flat_run(self, rng, roles, budget):
        """A non-empty flat run of hammer/nop statements."""
        length = rng.randrange(1, max(2, budget + 1))
        run = []
        for _ in range(length):
            if rng.chance(0.7):
                run.append(Hammer(rng.choice(roles)))
            else:
                run.append(Nop(rng.choice(_NOP_SLOTS)))
        return run
