"""The named-pattern registry and the built-in pattern library.

Patterns register by name and are looked up by the CLI's ``--pattern``
flag, the experiment engine, and the fuzzing campaign.  The built-ins
are written in the DSL itself (and parsed at import time, so the text
below is continuously tested):

``double_sided``
    The canonical PThammer round — one implicit activation per side of
    the pair, alternating.  Compiles to exactly the access stream of
    the hard-coded :class:`~repro.core.hammer.DoubleSidedHammer` loop.

``single_sided``
    Both activations aimed at role ``a`` — the degraded fallback
    :class:`~repro.core.hammer.SingleSidedHammer` encodes, as a
    pattern.

``four_sided``
    An n-sided example: four aggressor roles hammered in order.  Over
    a two-target pair the roles rebind round-robin, making it a
    double-density double-sided round; over four targets it is a true
    four-sided sweep.

``delay_slotted``
    A non-uniform example: delay slots between activations, modelling
    the paced patterns refresh-aware defenses (SoftTRR) are probed
    with.

``refresh_synced``
    Synchronises to the refresh-interval boundary, then bursts — the
    sync-to-refresh barrier that Blacksmith-style patterns build on.
"""

from repro.errors import PatternError
from repro.patterns.parser import parse

_REGISTRY = {}


def register(pattern, replace=False):
    """Add a pattern to the registry under its own name."""
    if pattern.name in _REGISTRY and not replace:
        raise PatternError(
            "pattern %r is already registered (pass replace=True to override)"
            % pattern.name
        )
    _REGISTRY[pattern.name] = pattern
    return pattern


def register_text(text, replace=False):
    """Parse DSL text and register the result."""
    return register(parse(text), replace=replace)


def get(name):
    """Look up a registered pattern; PatternError names the known ones."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise PatternError(
            "unknown pattern %r (registered: %s)" % (name, ", ".join(names()))
        )


def names():
    """Registered pattern names, sorted."""
    return sorted(_REGISTRY)


DOUBLE_SIDED = register_text(
    """\
pattern double_sided:
  aggressors a b
  hammer a
  hammer b
"""
)

SINGLE_SIDED = register_text(
    """\
pattern single_sided:
  aggressors a
  hammer a
  hammer a
"""
)

FOUR_SIDED = register_text(
    """\
pattern four_sided:
  aggressors a b c d
  hammer a
  hammer b
  hammer c
  hammer d
"""
)

DELAY_SLOTTED = register_text(
    """\
pattern delay_slotted:
  aggressors a b
  hammer a
  nop 64
  hammer b
  nop 64
"""
)

REFRESH_SYNCED = register_text(
    """\
pattern refresh_synced:
  aggressors a b
  sync_ref
  repeat 4:
    hammer a
    hammer b
"""
)
