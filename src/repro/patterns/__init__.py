"""Declarative hammer-pattern DSL compiled onto the fast path.

PThammer's hard-coded loop is one point in a family of implicit-hammer
patterns (TeleHammer's framing); this package makes the family
first-class.  A pattern is parsed from a small DSL
(:mod:`~repro.patterns.parser`), validated as an AST
(:mod:`~repro.patterns.model`), then resolved → unrolled → compiled
(:mod:`~repro.patterns.compiler`) down to ``touch_many`` turbo
batches, with a scalar reference interpreter kept as the equivalence
oracle.  Built-ins register by name (:mod:`~repro.patterns.builtins`)
and a seeded randomizer (:mod:`~repro.patterns.fuzz`) draws novel
patterns for fuzzing campaigns.  Grammar reference and tutorial:
``docs/PATTERNS.md``.
"""

from repro.patterns.builtins import get, names, register, register_text
from repro.patterns.compiler import (
    CompiledPattern,
    PatternHammer,
    PatternInterpreter,
    compile_pattern,
    hammer_batch,
    resolve,
    unroll,
)
from repro.patterns.fuzz import PatternFuzzer
from repro.patterns.model import (
    Hammer,
    Interleave,
    Nop,
    Pattern,
    Repeat,
    Rotate,
    SyncRef,
    unparse,
)
from repro.patterns.parser import parse

__all__ = [
    "CompiledPattern",
    "Hammer",
    "Interleave",
    "Nop",
    "Pattern",
    "PatternFuzzer",
    "PatternHammer",
    "PatternInterpreter",
    "Repeat",
    "Rotate",
    "SyncRef",
    "compile_pattern",
    "get",
    "hammer_batch",
    "names",
    "parse",
    "register",
    "register_text",
    "resolve",
    "unparse",
    "unroll",
]
