"""Resolve → unroll → compile pipeline, plus the reference interpreter.

The pipeline takes a validated :class:`~repro.patterns.model.Pattern`
from abstract roles down to concrete address batches:

1. **resolve** — bind each aggressor role to a
   :class:`~repro.core.hammer.HammerTarget` (round-robin over the
   supplied targets, so a two-role pattern binds ``a``/``b`` to a
   double-sided pair and degrades to single-sided when only one
   target survived pair construction);
2. **unroll** — flatten the combinator tree (``repeat``/``rotate``/
   ``interleave``) into a linear op stream of ``hammer``/``nop``/
   ``sync`` ops;
3. **compile** — lower each ``hammer`` op to its implicit-activation
   address batch (TLB-eviction sweep, LLC-eviction sweep(s), probe
   touch — the exact shape of
   :meth:`~repro.core.hammer.DoubleSidedHammer.round`) and coalesce
   adjacent batches into single ``touch_many`` calls for the fast
   path.  Coalescing is sound because ``access_many`` is batch-shape
   invariant: splitting or merging batches produces identical cycles,
   events, and state (verified by ``tests/test_fast_path.py``).

:class:`PatternInterpreter` executes the *unrolled* op stream with
scalar ``attacker.touch`` calls — no batching, no coalescing — and is
the equivalence oracle the compiled path is tested against
event-for-event.  :class:`PatternHammer` wraps either executable in
the drop-in round/run interface of ``DoubleSidedHammer``.
"""

from repro.core.hammer import HAMMER_ROUND_SPAN
from repro.core.layout import PROBE_DATA_OFFSET
from repro.errors import PatternError
from repro.patterns.model import (
    Hammer,
    Interleave,
    Nop,
    Repeat,
    Rotate,
    SyncRef,
)


# ---------------------------------------------------------------------------
# resolve


def resolve(pattern, targets):
    """Bind each aggressor role to a target, round-robin.

    Role ``i`` binds to ``targets[i % len(targets)]``: a two-role
    pattern over a double-sided pair gets one side each, and the same
    pattern over a single surviving target aims both roles at it —
    the same degradation :class:`~repro.core.hammer.SingleSidedHammer`
    applies to the hard-coded loop.
    """
    targets = list(targets)
    if not targets:
        raise PatternError(
            "pattern %r: no hammer targets to bind aggressors to" % pattern.name
        )
    return {
        role: targets[index % len(targets)]
        for index, role in enumerate(pattern.roles)
    }


# ---------------------------------------------------------------------------
# unroll


def _rotated(ops, shift):
    if not ops:
        return list(ops)
    shift %= len(ops)
    return ops[shift:] + ops[:shift]


def _unroll_block(body):
    ops = []
    for stmt in body:
        if isinstance(stmt, Hammer):
            ops.append(("hammer", stmt.role))
        elif isinstance(stmt, Nop):
            ops.append(("nop", stmt.count))
        elif isinstance(stmt, SyncRef):
            ops.append(("sync",))
        elif isinstance(stmt, Repeat):
            inner = _unroll_block(stmt.body)
            for iteration in range(stmt.count):
                ops.extend(_rotated(inner, iteration * stmt.rotate))
        elif isinstance(stmt, Rotate):
            ops.extend(_rotated(_unroll_block(stmt.body), stmt.shift))
        elif isinstance(stmt, Interleave):
            streams = [_unroll_block(branch) for branch in stmt.branches]
            position = 0
            while any(position < len(stream) for stream in streams):
                for stream in streams:
                    if position < len(stream):
                        ops.append(stream[position])
                position += 1
        else:  # pragma: no cover - Pattern.validate rejects these
            raise PatternError("cannot unroll %r" % (stmt,))
    return ops


def unroll(pattern):
    """Flatten the pattern body to a linear op stream.

    Ops are tuples: ``("hammer", role)``, ``("nop", count)``, and
    ``("sync",)``.  Rotation is *op-level* (it applies to the unrolled
    stream of its block, not the statement list), and ``repeat N
    rotate K`` rotates iteration ``i`` left by ``i * K`` — so the
    aggressor order walks through the round, Blacksmith-style.
    """
    return _unroll_block(pattern.body)


# ---------------------------------------------------------------------------
# compile


def hammer_batch(target, llc_sweeps=1):
    """The implicit-activation address batch for one hammer of a target.

    Identical to one side of
    :meth:`~repro.core.hammer.DoubleSidedHammer.round`: TLB-eviction
    sweep, ``llc_sweeps`` LLC-eviction sweep(s), then the probe touch
    whose page-table walk performs the kernel-row activation.
    """
    addrs = list(target.tlb_set)
    for _ in range(llc_sweeps):
        addrs.extend(target.llc_set.lines)
    addrs.append(target.va + PROBE_DATA_OFFSET)
    return addrs


class CompiledPattern:
    """A pattern lowered to ``touch_many``/``nop``/``sync`` steps.

    ``steps`` is the executable program: ``("touch", addrs)`` runs one
    ``attacker.touch_many(addrs)`` turbo batch, ``("nop", count)``
    burns cycles, ``("sync", interval)`` spins to the next multiple of
    ``interval`` cycles.  ``ops`` keeps the unrolled op stream the
    steps were lowered from, for inspection and the oracle tests.
    """

    __slots__ = ("pattern", "binding", "ops", "steps", "llc_sweeps")

    def __init__(self, pattern, binding, ops, steps, llc_sweeps):
        self.pattern = pattern
        self.binding = binding
        self.ops = ops
        self.steps = steps
        self.llc_sweeps = llc_sweeps

    def execute(self, attacker):
        """Run one instance of the pattern through the fast path."""
        for step in self.steps:
            kind = step[0]
            if kind == "touch":
                attacker.touch_many(step[1])
            elif kind == "nop":
                attacker.nop(step[1])
            else:  # sync
                remainder = (-attacker.rdtsc()) % step[1]
                if remainder:
                    attacker.nop(remainder)

    def describe(self):
        """Human-readable step listing (``repro patterns show``)."""
        lines = []
        for step in self.steps:
            if step[0] == "touch":
                lines.append("touch_many  %5d addresses" % len(step[1]))
            elif step[0] == "nop":
                lines.append("nop         %5d cycles" % step[1])
            else:
                lines.append("sync_ref    %5d-cycle boundary" % step[1])
        return lines


def compile_pattern(
    pattern, targets, llc_sweeps=1, refresh_interval=None, coalesce=True
):
    """Lower a pattern against concrete targets to a :class:`CompiledPattern`.

    ``refresh_interval`` (cycles) is required only when the pattern
    uses ``sync_ref``; omitting it for such a pattern is a
    :class:`PatternError` at compile time rather than a surprise at
    run time.  ``coalesce=False`` keeps one ``touch`` step per
    ``hammer`` op — useful for debugging; the default merges adjacent
    batches into single turbo calls.
    """
    binding = resolve(pattern, targets)
    ops = unroll(pattern)
    steps = []
    for op in ops:
        if op[0] == "hammer":
            addrs = hammer_batch(binding[op[1]], llc_sweeps)
            if coalesce and steps and steps[-1][0] == "touch":
                steps[-1] = ("touch", steps[-1][1] + addrs)
            else:
                steps.append(("touch", addrs))
        elif op[0] == "nop":
            steps.append(("nop", op[1]))
        else:  # sync
            if refresh_interval is None:
                raise PatternError(
                    "pattern %r uses sync_ref but no refresh interval "
                    "was supplied to the compiler" % pattern.name
                )
            if not isinstance(refresh_interval, int) or refresh_interval < 1:
                raise PatternError(
                    "refresh interval must be a positive integer, got %r"
                    % (refresh_interval,)
                )
            steps.append(("sync", refresh_interval))
    return CompiledPattern(pattern, binding, ops, steps, llc_sweeps)


# ---------------------------------------------------------------------------
# reference interpreter


class PatternInterpreter:
    """Executes the unrolled op stream with scalar accesses.

    The equivalence oracle: no batching, no coalescing, one
    ``attacker.touch`` per address in the hammer batch.  The compiled
    path must produce the same machine events, cycle counts, and state
    as this — ``tests/test_pattern_equivalence.py`` holds the pair to
    it under both ``REPRO_FAST_PATH`` settings.
    """

    __slots__ = ("pattern", "binding", "ops", "llc_sweeps", "refresh_interval")

    def __init__(self, pattern, targets, llc_sweeps=1, refresh_interval=None):
        self.pattern = pattern
        self.binding = resolve(pattern, targets)
        self.ops = unroll(pattern)
        self.llc_sweeps = llc_sweeps
        if refresh_interval is None and any(op[0] == "sync" for op in self.ops):
            raise PatternError(
                "pattern %r uses sync_ref but no refresh interval "
                "was supplied to the interpreter" % pattern.name
            )
        self.refresh_interval = refresh_interval

    def execute(self, attacker):
        touch = attacker.touch
        for op in self.ops:
            if op[0] == "hammer":
                for addr in hammer_batch(self.binding[op[1]], self.llc_sweeps):
                    touch(addr)
            elif op[0] == "nop":
                attacker.nop(op[1])
            else:  # sync
                remainder = (-attacker.rdtsc()) % self.refresh_interval
                if remainder:
                    attacker.nop(remainder)


# ---------------------------------------------------------------------------
# the drop-in hammer


class PatternHammer:
    """Drop-in for :class:`~repro.core.hammer.DoubleSidedHammer`.

    Runs one executed pattern instance per round, wrapped in the same
    rdtsc bracketing, ``hammer-round`` trace span, optional
    ``nop_padding``, and per-round guard hook as the hard-coded loop —
    so ``report.round_costs``, resilience retries, and the Figure-5
    sweep work unchanged regardless of which pattern is loaded.
    ``executable`` is anything with ``execute(attacker)``: a
    :class:`CompiledPattern` normally, a :class:`PatternInterpreter`
    when running the oracle.
    """

    def __init__(self, attacker, executable, trace=None, guard=None):
        self.attacker = attacker
        self.executable = executable
        self.trace = trace
        self._guard = guard if guard is not None else lambda operation: operation()

    def round(self, nop_padding=0):
        """One pattern instance; returns its cost in cycles."""
        attacker = self.attacker
        start = attacker.rdtsc()
        self.executable.execute(attacker)
        if nop_padding:
            attacker.nop(nop_padding)
        end = attacker.rdtsc()
        if self.trace is not None:
            self.trace.add_span(HAMMER_ROUND_SPAN, start, end)
        return end - start

    def run(self, rounds, nop_padding=0):
        """``rounds`` iterations; returns the per-round cycle costs."""
        return [
            self._guard(lambda: self.round(nop_padding)) for _ in range(rounds)
        ]

    def run_for_cycles(self, budget_cycles, nop_padding=0):
        """Hammer until ``budget_cycles`` have elapsed; returns costs."""
        attacker = self.attacker
        deadline = attacker.rdtsc() + budget_cycles
        costs = []
        while attacker.rdtsc() < deadline:
            costs.append(self._guard(lambda: self.round(nop_padding)))
        return costs
