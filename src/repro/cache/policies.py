"""Replacement policies for set-associative structures.

The choice of policy is load-bearing for this reproduction: the paper's
Figures 3 and 4 hinge on the TLB and LLC *not* being true-LRU, which is
why minimal reliable eviction sets are larger than the associativity
(12 pages for 4+4 TLB ways, associativity+1 lines for the LLC).  The
default everywhere is therefore :class:`BitPLRU` — a faithful stand-in
for Intel's pseudo-LRU — whose periodic reference-bit resets let a
just-filled victim survive exactly-associativity sweeps with non-trivial
probability.  :class:`TrueLRU` and :class:`RandomPolicy` exist for the
ablation benchmarks.
"""

from repro.errors import ConfigError
from repro.utils.rng import _GOLDEN, _MASK64

# splitmix64 output-mix constants (see repro.utils.rng);
# FastBitPLRU.evict_and_fill inlines the rng step with these.
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB
_TWO64 = float(1 << 64)


class ReplacementPolicy:
    """Per-set replacement state.  One instance per cache set."""

    def __init__(self, ways, rng):
        self.ways = ways
        self._rng = rng

    def touch(self, way):
        """Record a hit on ``way``."""
        raise NotImplementedError

    def on_fill(self, way):
        """Record that a new line was installed into ``way``."""
        self.touch(way)

    def victim(self):
        """Choose the way to evict from a full set."""
        raise NotImplementedError

    def evict_and_fill(self):
        """Pick the victim way and record the fill into it, in one step.

        Exactly ``victim()`` followed by ``on_fill(way)`` — the fast
        access path uses this fused form to skip a dispatch per
        eviction; policies may override it with a flattened equivalent.
        """
        way = self.victim()
        self.on_fill(way)
        return way

    def on_invalidate(self, way):
        """Record that ``way`` was explicitly emptied (clflush/back-inval)."""

    # -- snapshot protocol (docs/SNAPSHOTS.md) --------------------------
    # Subclasses extend the base dict with their own fields.  Reference
    # and fast BitPLRU variants share one encoding (the packed mask) so
    # their snapshots are interchangeable.

    def state_dict(self):
        """JSON-serialisable policy state, including the RNG stream."""
        return {"rng": self._rng.state_dict()}

    def load_state(self, state):
        """Restore state captured by :meth:`state_dict`."""
        self._rng.load_state(state["rng"])


class BitPLRU(ReplacementPolicy):
    """Bit-pseudo-LRU (MRU-bit) policy with bimodal insertion.

    Every way has a reference bit; a hit sets it; when the last zero bit
    would disappear, all other bits reset.  Victims are drawn uniformly
    from the zero-bit ways, which smooths the eviction-probability curve
    the way scheduling noise does on real hardware.

    ``insertion_mru_probability`` < 1 models the non-MRU insertion of
    real Intel structures (bimodal/adaptive insertion): a fill only gets
    its reference bit with that probability, so freshly inserted lines
    are sometimes re-victimised before older residents — pushing the
    reliable eviction-set size further above the associativity, which is
    where the paper measures it (12 pages for 4+4 TLB ways).
    """

    insertion_mru_probability = 1.0

    def __init__(self, ways, rng):
        super().__init__(ways, rng)
        self._bits = [0] * ways
        self._zeros = ways  # cached count keeps touch O(1)

    def touch(self, way):
        if self._bits[way]:
            return
        self._bits[way] = 1
        self._zeros -= 1
        if self._zeros == 0:
            self._bits = [0] * self.ways
            self._bits[way] = 1
            self._zeros = self.ways - 1

    def on_fill(self, way):
        p = self.insertion_mru_probability
        if p >= 1.0 or self._rng.random() < p:
            self.touch(way)
        elif self._bits[way]:
            self._bits[way] = 0
            self._zeros += 1

    def victim(self):
        zero_ways = [w for w, bit in enumerate(self._bits) if not bit]
        if not zero_ways:
            # Unreachable by construction (touch always leaves a zero),
            # but stay safe if state is manipulated externally.
            return self._rng.randint(self.ways)
        return self._rng.choice(zero_ways)

    def on_invalidate(self, way):
        if self._bits[way]:
            self._bits[way] = 0
            self._zeros += 1

    def state_dict(self):
        state = ReplacementPolicy.state_dict(self)
        state["mask"] = sum(bit << way for way, bit in enumerate(self._bits))
        return state

    def load_state(self, state):
        ReplacementPolicy.load_state(self, state)
        mask = state["mask"]
        self._bits = [(mask >> way) & 1 for way in range(self.ways)]
        self._zeros = self.ways - sum(self._bits)


class TrueLRU(ReplacementPolicy):
    """Exact least-recently-used ordering (O(1) touches via stamps)."""

    def __init__(self, ways, rng):
        super().__init__(ways, rng)
        self._clock = ways
        self._stamps = list(range(ways))  # lowest stamp = LRU

    def touch(self, way):
        self._stamps[way] = self._clock
        self._clock += 1

    def victim(self):
        return min(range(self.ways), key=self._stamps.__getitem__)

    def state_dict(self):
        state = ReplacementPolicy.state_dict(self)
        state["clock"] = self._clock
        state["stamps"] = list(self._stamps)
        return state

    def load_state(self, state):
        ReplacementPolicy.load_state(self, state)
        self._clock = state["clock"]
        self._stamps = list(state["stamps"])

    def _two_oldest(self):
        """(LRU way, second-LRU way) by stamp."""
        stamps = self._stamps
        first = second = None
        for way in range(self.ways):
            if first is None or stamps[way] < stamps[first]:
                second = first
                first = way
            elif second is None or stamps[way] < stamps[second]:
                second = way
        return first, second


class NoisyLRU(TrueLRU):
    """LRU with occasional second-victim choice.

    Real Sandy Bridge LLCs behave near-LRU for sequential sweeps but not
    exactly: with an eviction set equal to the associativity the
    eviction rate dips below 100 %, while associativity + 1 is reliably
    enough — precisely the Figure-4 knee.  ``lru_bias`` is the
    probability the true LRU way is chosen; otherwise the second-oldest
    way is victimised.
    """

    lru_bias = 0.85

    def victim(self):
        first, second = self._two_oldest()
        if second is not None and self._rng.random() >= self.lru_bias:
            return second
        return first


class RandomPolicy(ReplacementPolicy):
    """Uniform random victim selection; hits carry no information."""

    def touch(self, way):
        pass

    def victim(self):
        return self._rng.randint(self.ways)


class TreePLRU(ReplacementPolicy):
    """Classic binary-tree pseudo-LRU; requires power-of-two ways."""

    def __init__(self, ways, rng):
        if ways & (ways - 1):
            raise ConfigError("TreePLRU needs a power-of-two way count")
        super().__init__(ways, rng)
        self._nodes = [0] * (ways - 1)  # heap-indexed internal nodes

    def touch(self, way):
        # Walk from root to the leaf, pointing every node *away* from it.
        node = 0
        lo, hi = 0, self.ways
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if way < mid:
                self._nodes[node] = 1  # point at the right half
                node = 2 * node + 1
                hi = mid
            else:
                self._nodes[node] = 0  # point at the left half
                node = 2 * node + 2
                lo = mid
        # on_fill/touch share this path; nothing else to update.

    def victim(self):
        node = 0
        lo, hi = 0, self.ways
        while hi - lo > 1:
            mid = (lo + hi) // 2
            if self._nodes[node]:
                # The node points at the right half: victimise there.
                node = 2 * node + 2
                lo = mid
            else:
                node = 2 * node + 1
                hi = mid
        return lo

    def state_dict(self):
        state = ReplacementPolicy.state_dict(self)
        state["nodes"] = list(self._nodes)
        return state

    def load_state(self, state):
        ReplacementPolicy.load_state(self, state)
        self._nodes = list(state["nodes"])


class SRRIP(ReplacementPolicy):
    """Static re-reference interval prediction (Jaleel et al., 2-bit).

    Hits promote to re-reference-soon (RRPV 0); fills insert at
    RRPV 2 ("long"); victims are ways at RRPV 3, ageing everyone until
    one appears.  Included for the replacement-policy ablations — its
    long-insertion behaviour makes scanning eviction sets *less*
    effective than PLRU, a property some thrash-resistant LLCs exploit.
    """

    MAX_RRPV = 3
    INSERT_RRPV = 2

    def __init__(self, ways, rng):
        super().__init__(ways, rng)
        self._rrpv = [self.MAX_RRPV] * ways

    def touch(self, way):
        self._rrpv[way] = 0

    def on_fill(self, way):
        self._rrpv[way] = self.INSERT_RRPV

    def victim(self):
        while True:
            candidates = [
                w for w, value in enumerate(self._rrpv) if value >= self.MAX_RRPV
            ]
            if candidates:
                return self._rng.choice(candidates)
            self._rrpv = [value + 1 for value in self._rrpv]

    def on_invalidate(self, way):
        self._rrpv[way] = self.MAX_RRPV

    def state_dict(self):
        state = ReplacementPolicy.state_dict(self)
        state["rrpv"] = list(self._rrpv)
        return state

    def load_state(self, state):
        ReplacementPolicy.load_state(self, state)
        self._rrpv = list(state["rrpv"])


class BitPLRUBimodal(BitPLRU):
    """BitPLRU with 25 % non-MRU insertion (see class docstring above).

    Calibrated so the minimal reliable TLB eviction set lands at ~12
    pages for 4+4-way TLBs, matching the paper's Figure 3.
    """

    insertion_mru_probability = 0.75


_ZERO_WAYS_TABLES = {}


def _zero_ways_table(ways):
    """mask -> tuple of zero-bit ways, for every possible reference mask.

    Shared per way count across all sets; 2**ways small tuples, built
    once.  Lets :class:`FastBitPLRU` replace the per-victim zero-way
    list comprehension with one list index.
    """
    table = _ZERO_WAYS_TABLES.get(ways)
    if table is None:
        table = [
            tuple(w for w in range(ways) if not (mask >> w) & 1)
            for mask in range(1 << ways)
        ]
        _ZERO_WAYS_TABLES[ways] = table
    return table


class FastBitPLRU(BitPLRU):
    """:class:`BitPLRU` with reference bits packed into one integer.

    State machine and RNG draws are bit-identical to the reference
    class (the fast-path equivalence suite compares whole runs); the
    fast access path selects it via ``make_policy(..., fast=True)``
    because fills and victim draws run on every cache miss, where the
    reference version's per-way list walks dominate the arithmetic.
    Victim candidates come from the precomputed zero-ways table (for
    way counts where 2**ways stays small) and the eviction+fill
    transition is fused into :meth:`evict_and_fill`.
    """

    def __init__(self, ways, rng):
        ReplacementPolicy.__init__(self, ways, rng)
        self._mask = 0  # bit w set <=> reference bit of way w set
        self._full = (1 << ways) - 1
        self._table = _zero_ways_table(ways) if ways <= 16 else None

    def touch(self, way):
        bit = 1 << way
        mask = self._mask
        if mask & bit:
            return
        mask |= bit
        # Mask full = the last zero bit disappeared: reset the others.
        self._mask = bit if mask == self._full else mask

    def on_fill(self, way):
        p = self.insertion_mru_probability
        if p < 1.0 and self._rng.random() >= p:
            self._mask &= ~(1 << way)  # cold (non-MRU) insertion
            return
        bit = 1 << way
        mask = self._mask
        if mask & bit:
            return
        mask |= bit
        self._mask = bit if mask == self._full else mask

    def _zero_ways(self):
        table = self._table
        if table is not None:
            return table[self._mask]
        mask = self._mask
        return [w for w in range(self.ways) if not (mask >> w) & 1]

    def victim(self):
        zero_ways = self._zero_ways()
        if not zero_ways:
            return self._rng.randint(self.ways)
        # Same draw as rng.choice(zero_ways), one frame cheaper.
        return zero_ways[self._rng.randint(len(zero_ways))]

    def evict_and_fill(self):
        # victim() + on_fill(way) fused; identical draws/transitions.
        # This runs once per miss-with-eviction — the hottest policy
        # transition — so the rng draws inline the splitmix64 step
        # (same stream as DeterministicRng.randint/random).
        rng = self._rng
        table = self._table
        mask = self._mask
        if table is not None:
            zero_ways = table[mask]
        else:
            zero_ways = [w for w in range(self.ways) if not (mask >> w) & 1]
        rng._state = x = (rng._state + _GOLDEN) & _MASK64
        x = (x + _GOLDEN) & _MASK64
        x = ((x ^ (x >> 30)) * _MIX1) & _MASK64
        x = ((x ^ (x >> 27)) * _MIX2) & _MASK64
        draw = x ^ (x >> 31)
        if zero_ways:
            way = zero_ways[draw % len(zero_ways)]
        else:
            way = draw % self.ways
        bit = 1 << way
        p = self.insertion_mru_probability
        if p < 1.0:
            rng._state = x = (rng._state + _GOLDEN) & _MASK64
            x = (x + _GOLDEN) & _MASK64
            x = ((x ^ (x >> 30)) * _MIX1) & _MASK64
            x = ((x ^ (x >> 27)) * _MIX2) & _MASK64
            if (x ^ (x >> 31)) / _TWO64 >= p:
                self._mask = mask & ~bit
                return way
        if mask & bit:
            return way
        mask |= bit
        self._mask = bit if mask == self._full else mask
        return way

    def on_invalidate(self, way):
        self._mask &= ~(1 << way)

    def state_dict(self):
        # Same "mask" encoding as the reference BitPLRU, so snapshots
        # move freely between fast and reference machines.
        state = ReplacementPolicy.state_dict(self)
        state["mask"] = self._mask
        return state

    def load_state(self, state):
        ReplacementPolicy.load_state(self, state)
        self._mask = state["mask"]


class FastBitPLRUBimodal(FastBitPLRU):
    """Fast variant of :class:`BitPLRUBimodal` (same 25 % non-MRU fill)."""

    insertion_mru_probability = 0.75


_POLICIES = {
    "bit_plru": BitPLRU,
    "bit_plru_bimodal": BitPLRUBimodal,
    "noisy_lru": NoisyLRU,
    "srrip": SRRIP,
    "true_lru": TrueLRU,
    "random": RandomPolicy,
    "tree_plru": TreePLRU,
}

#: Accelerated but behaviourally identical implementations, used by the
#: fast access path (docs/PERFORMANCE.md).  Policies without an entry
#: run their reference class on both paths.
_FAST_POLICIES = {
    "bit_plru": FastBitPLRU,
    "bit_plru_bimodal": FastBitPLRUBimodal,
}


def make_policy(name, ways, rng, fast=False):
    """Instantiate the policy called ``name`` for a set of ``ways`` ways.

    ``fast=True`` selects the accelerated variant where one exists;
    the draw sequence and state transitions are identical either way.
    """
    factory = _FAST_POLICIES.get(name) if fast else None
    if factory is None:
        try:
            factory = _POLICIES[name]
        except KeyError:
            raise ConfigError(
                "unknown replacement policy %r (have: %s)"
                % (name, ", ".join(sorted(_POLICIES)))
            )
    return factory(ways, rng)


def policy_names():
    """All registered policy names."""
    return sorted(_POLICIES)
