"""A generic set-associative lookup structure.

Used for the data caches, both TLB levels, and (fully-associative, i.e.
one set) the paging-structure caches.  Tags are opaque hashable keys —
line addresses for caches, virtual page numbers for TLBs — so one
implementation serves every structure on the translation path.

Every probing method exists twice: the plain way-loop *reference*
implementation (the default, and what ``REPRO_FAST_PATH=0`` machines
run) and a ``_*_fast`` variant bound over it when the structure is
built with ``fast=True``.  The fast variants scan the way array with
C-level ``in``/``index`` instead of a Python loop; scan order, counter
updates, and replacement-state transitions are identical, which the
fast-path equivalence suite enforces (docs/PERFORMANCE.md).
"""

from repro.cache.policies import make_policy
from repro.errors import ConfigError
from repro.utils.bitops import is_power_of_two


class _SetState:
    """Tags and replacement state of one cache set."""

    __slots__ = ("tags", "policy")

    def __init__(self, ways, policy_name, rng, fast=False):
        self.tags = [None] * ways
        self.policy = make_policy(policy_name, ways, rng, fast=fast)


class SetAssociativeCache:
    """``sets`` x ``ways`` associative structure with pluggable replacement.

    Per-set state is created lazily, so large sparsely-used structures
    (an 8192-set LLC) cost host memory only for the sets actually
    exercised.  ``fast=True`` swaps the probing methods for the
    behaviourally identical accelerated variants (see module docstring).
    """

    def __init__(self, sets, ways, policy, rng, name="cache", fast=False):
        if sets <= 0 or not is_power_of_two(sets):
            raise ConfigError("%s: set count must be a positive power of two" % name)
        if ways <= 0:
            raise ConfigError("%s: need at least one way" % name)
        self.sets = sets
        self.ways = ways
        self.policy_name = policy
        self.name = name
        self._rng = rng
        self._state = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.fast = bool(fast)
        if fast:
            self.lookup = self._lookup_fast
            self.insert = self._insert_fast
            self.invalidate = self._invalidate_fast

    def _set(self, index):
        state = self._state.get(index)
        if state is None:
            state = _SetState(
                self.ways, self.policy_name, self._rng.fork(index), fast=self.fast
            )
            self._state[index] = state
        return state

    def lookup(self, set_index, tag):
        """Probe for ``tag``; updates replacement state and hit counters."""
        state = self._state.get(set_index)
        if state is not None:
            tags = state.tags
            for way in range(self.ways):
                if tags[way] == tag:
                    state.policy.touch(way)
                    self.hits += 1
                    return True
        self.misses += 1
        return False

    def _lookup_fast(self, set_index, tag):
        """:meth:`lookup` with the way scan done at C speed."""
        state = self._state.get(set_index)
        if state is not None:
            tags = state.tags
            if tag in tags:
                state.policy.touch(tags.index(tag))
                self.hits += 1
                return True
        self.misses += 1
        return False

    def contains(self, set_index, tag):
        """Probe without side effects (evaluation only)."""
        state = self._state.get(set_index)
        return state is not None and tag in state.tags

    def insert(self, set_index, tag):
        """Install ``tag``; return the evicted tag, or None.

        Re-inserting a resident tag only refreshes its replacement
        state.
        """
        state = self._set(set_index)
        tags = state.tags
        for way in range(self.ways):
            if tags[way] == tag:
                state.policy.touch(way)
                return None
        for way in range(self.ways):
            if tags[way] is None:
                tags[way] = tag
                state.policy.on_fill(way)
                return None
        way = state.policy.victim()
        evicted = tags[way]
        tags[way] = tag
        state.policy.on_fill(way)
        self.evictions += 1
        return evicted

    def _insert_fast(self, set_index, tag):
        """:meth:`insert` with the resident/free scans done at C speed."""
        state = self._state.get(set_index)
        if state is None:
            state = self._set(set_index)
        tags = state.tags
        if tag in tags:
            state.policy.touch(tags.index(tag))
            return None
        if None in tags:
            way = tags.index(None)
            tags[way] = tag
            state.policy.on_fill(way)
            return None
        way = state.policy.victim()
        evicted = tags[way]
        tags[way] = tag
        state.policy.on_fill(way)
        self.evictions += 1
        return evicted

    def invalidate(self, set_index, tag):
        """Drop ``tag`` if resident; return whether it was present."""
        state = self._state.get(set_index)
        if state is None:
            return False
        tags = state.tags
        for way in range(self.ways):
            if tags[way] == tag:
                tags[way] = None
                state.policy.on_invalidate(way)
                return True
        return False

    def _invalidate_fast(self, set_index, tag):
        """:meth:`invalidate` with the way scan done at C speed."""
        state = self._state.get(set_index)
        if state is None:
            return False
        tags = state.tags
        if tag in tags:
            way = tags.index(tag)
            tags[way] = None
            state.policy.on_invalidate(way)
            return True
        return False

    def flush_all(self):
        """Empty the whole structure (context switch / privileged flush)."""
        self._state.clear()

    def resident_tags(self, set_index):
        """Tags currently in a set (evaluation only)."""
        state = self._state.get(set_index)
        if state is None:
            return []
        return [tag for tag in state.tags if tag is not None]

    def occupancy(self):
        """Total resident entries (evaluation only)."""
        return sum(
            1
            for state in self._state.values()
            for tag in state.tags
            if tag is not None
        )

    # -- snapshot protocol (docs/SNAPSHOTS.md) --------------------------

    def state_dict(self):
        """Materialised sets plus counters.

        Unmaterialised sets are omitted: their policy streams come from
        pure ``self._rng.fork(index)`` draws, so after restore they
        regenerate bit-identically on first touch — the same lazy
        behaviour an uninterrupted run would have shown.
        """
        return {
            "rng": self._rng.state_dict(),
            "sets": {
                index: {
                    "tags": list(state.tags),
                    "policy": state.policy.state_dict(),
                }
                for index, state in self._state.items()
            },
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    def load_state(self, state):
        """Restore state captured by :meth:`state_dict`."""
        self._rng.load_state(state["rng"])
        self._state.clear()
        for index, entry in state["sets"].items():
            set_state = _SetState(
                self.ways, self.policy_name, self._rng.fork(index), fast=self.fast
            )
            set_state.tags = list(entry["tags"])
            set_state.policy.load_state(entry["policy"])
            self._state[index] = set_state
        self.hits = state["hits"]
        self.misses = state["misses"]
        self.evictions = state["evictions"]

    def __repr__(self):
        return "SetAssociativeCache(%s: %dx%d, policy=%s)" % (
            self.name,
            self.sets,
            self.ways,
            self.policy_name,
        )
