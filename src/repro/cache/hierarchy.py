"""Three-level inclusive data-cache hierarchy (L1D, L2, sliced LLC).

Inclusivity is the property PThammer needs (Section III-D): because the
LLC is inclusive of L1 and L2, evicting the L1PTE's line from the LLC
back-invalidates it everywhere, forcing the next page-table walk to
DRAM.  ``access`` models that back-invalidation explicitly.

Page-table entries travel through the same hierarchy as user data —
there are no separate PTE caches below the paging-structure caches —
which is why a user-controlled eviction set can evict a kernel-owned
L1PTE line at all.
"""

from repro.cache.setassoc import SetAssociativeCache
from repro.observe import CACHE_EVICT, NULL_TRACE
from repro.observe import CACHE as CACHE_COMPONENT
from repro.utils.rng import hash64
from repro.cache.slices import SliceHash
from repro.params import LINE_SHIFT

#: Levels returned by :meth:`CacheHierarchy.access`.
L1, L2, LLC, MEM = "l1", "l2", "llc", "mem"


class CacheHierarchy:
    """L1D + L2 + sliced inclusive LLC, addressed by physical address."""

    def __init__(self, config, rng, trace=None, fast=False, columnar=False):
        self.config = config
        #: Trace bus for structured events (docs/OBSERVABILITY.md).
        self._trace = trace if trace is not None else NULL_TRACE
        #: Fast-path flag (machines pass theirs): selects the C-scan
        #: structure variants, the inlined :meth:`access`, and the LLC
        #: index memo — all behaviourally identical to the reference
        #: implementations, so REPRO_FAST_PATH=0 measures the true
        #: reference cost (docs/PERFORMANCE.md).
        self.fast = bool(fast)
        #: Columnar-tier flag: the levels become packed-column
        #: structures (repro.cache.columnar) and :meth:`access` stays
        #: the reference method — the structures themselves carry the
        #: acceleration, and the machine's columnar kernel inlines over
        #: their columns directly (docs/VECTORIZATION.md).
        self.columnar = bool(columnar)
        if columnar:
            from repro.cache.columnar import ColumnarSetAssociativeCache

            def _level(sets, ways, policy, level_rng, name):
                return ColumnarSetAssociativeCache(
                    sets, ways, policy, level_rng, name=name
                )

        else:

            def _level(sets, ways, policy, level_rng, name):
                return SetAssociativeCache(
                    sets, ways, policy, level_rng, name=name, fast=fast
                )

        self.l1 = _level(
            config.l1_sets, config.l1_ways, config.l1_policy, rng.fork(1), "L1D"
        )
        self.l2 = _level(
            config.l2_sets, config.l2_ways, config.l2_policy, rng.fork(2), "L2"
        )
        self.llc = _level(
            config.llc_sets_per_slice * config.llc_slices,
            config.llc_ways,
            config.policy,
            rng.fork(3),
            "LLC",
        )
        self.slice_hash = SliceHash(config.llc_slices, config.slice_masks)
        self._l1_mask = config.l1_sets - 1
        self._l2_mask = config.l2_sets - 1
        self._llc_set_mask = config.llc_sets_per_slice - 1
        self._sets_per_slice = config.llc_sets_per_slice
        self._inclusive = getattr(config, "inclusive", True)
        self._llc_index_key = getattr(config, "llc_index_key", 0)
        self._llc_total_sets = config.llc_sets_per_slice * config.llc_slices
        #: line -> LLC global set index memo.  The mapping is a pure
        #: function of the line address for a machine's lifetime, so
        #: the memo never invalidates.
        self._index_memo = {} if (fast or columnar) else None
        self.back_invalidations = 0
        # _access_fast pokes _SetState internals and only fits the fast
        # structures; columnar hierarchies run the reference access()
        # over their packed columns (the machine's batch kernel is
        # where columnar accesses get inlined).
        if fast and not columnar:
            self.access = self._access_fast

    def llc_set_and_slice(self, paddr):
        """(set index within slice, slice index) of a physical address."""
        line = paddr >> LINE_SHIFT
        if self._llc_index_key:
            index = self._llc_index(line)
            return index % self._sets_per_slice, index // self._sets_per_slice
        return line & self._llc_set_mask, self.slice_hash.slice_of(paddr)

    def _llc_index(self, line):
        memo = self._index_memo
        if memo is not None:
            index = memo.get(line)
            if index is not None:
                return index
        if self._llc_index_key:
            # CEASER/ScatterCache-style keyed index randomisation
            # (Section V): physically-nearby lines land in unrelated
            # sets, so offset-based congruence — and with it eviction-set
            # construction — collapses.
            index = hash64(self._llc_index_key, line) % self._llc_total_sets
        else:
            set_index = line & self._llc_set_mask
            slice_index = self.slice_hash.slice_of(line << LINE_SHIFT)
            index = slice_index * self._sets_per_slice + set_index
        if memo is not None:
            memo[line] = index
        return index

    def access(self, paddr):
        """Look up one physical address, filling on miss.

        Returns the level that served the request: ``'l1'``, ``'l2'``,
        ``'llc'``, or ``'mem'`` (LLC miss — the caller must charge DRAM
        latency).  In the non-inclusive configuration fills bypass the
        LLC and L2 victims drop into it instead.

        This is the reference implementation; ``fast=True`` hierarchies
        bind :meth:`_access_fast` over it.
        """
        line = paddr >> LINE_SHIFT
        l1_set = line & self._l1_mask
        if self.l1.lookup(l1_set, line):
            return L1
        l2_set = line & self._l2_mask
        if self.l2.lookup(l2_set, line):
            self.l1.insert(l1_set, line)
            return L2
        llc_index = self._llc_index(line)
        if self.llc.lookup(llc_index, line):
            self._fill_l2(l2_set, line)
            self.l1.insert(l1_set, line)
            return LLC
        if self._inclusive:
            evicted = self.llc.insert(llc_index, line)
            if evicted is not None:
                self._back_invalidate(evicted)
        self._fill_l2(l2_set, line)
        self.l1.insert(l1_set, line)
        return MEM

    def _access_fast(self, paddr):
        """:meth:`access` with the level probes and fills inlined.

        Same scan order, hit/miss/eviction counters, replacement
        updates, and fill/back-invalidation sequence as the reference
        method — access() runs for every data load *and* page-table
        fetch, and at that rate the call frames dominate the work.
        The inlined fills skip ``insert``'s resident rescan because the
        probe just above proved the line absent from that level.
        """
        line = paddr >> LINE_SHIFT
        l1 = self.l1
        l1_set = line & self._l1_mask
        l1_state = l1._state.get(l1_set)
        if l1_state is not None and line in l1_state.tags:
            l1_state.policy.touch(l1_state.tags.index(line))
            l1.hits += 1
            return L1
        l1.misses += 1
        l2 = self.l2
        l2_set = line & self._l2_mask
        l2_state = l2._state.get(l2_set)
        if l2_state is not None and line in l2_state.tags:
            l2_state.policy.touch(l2_state.tags.index(line))
            l2.hits += 1
            self._fill_absent(l1, l1_state, l1_set, line)
            return L2
        l2.misses += 1
        llc = self.llc
        inclusive = self._inclusive
        llc_index = self._llc_index(line)
        llc_state = llc._state.get(llc_index)
        if llc_state is not None and line in llc_state.tags:
            llc_state.policy.touch(llc_state.tags.index(line))
            llc.hits += 1
            if inclusive:
                self._fill_absent(l2, l2_state, l2_set, line)
            else:
                self._fill_l2(l2_set, line)
            self._fill_absent(l1, l1_state, l1_set, line)
            return LLC
        llc.misses += 1
        if inclusive:
            evicted = self._fill_absent(llc, llc_state, llc_index, line)
            if evicted is not None:
                self._back_invalidate(evicted)
            self._fill_absent(l2, l2._state.get(l2_set), l2_set, line)
        else:
            self._fill_l2(l2_set, line)
        self._fill_absent(l1, l1._state.get(l1_set), l1_set, line)
        return MEM

    @staticmethod
    def _fill_absent(cache, state, set_index, tag):
        """``cache.insert`` for a tag the probe just proved absent.

        Returns the evicted tag or None.  Skips the resident rescan;
        free-slot fill and victim choice (via the policy's fused
        ``evict_and_fill``) match the reference insert exactly.
        """
        if state is None:
            state = cache._set(set_index)
        tags = state.tags
        if None in tags:
            way = tags.index(None)
            tags[way] = tag
            state.policy.on_fill(way)
            return None
        way = state.policy.evict_and_fill()
        evicted = tags[way]
        tags[way] = tag
        cache.evictions += 1
        return evicted

    def _fill_l2(self, l2_set, line):
        """Install into L2; non-inclusive LLCs absorb the L2 victim."""
        victim = self.l2.insert(l2_set, line)
        if not self._inclusive and victim is not None:
            self.llc.insert(self._llc_index(victim), victim)

    def _back_invalidate(self, line):
        """Drop an LLC-evicted line from the inner levels (inclusivity)."""
        if self._trace.enabled:
            self._trace.emit(CACHE_EVICT, CACHE_COMPONENT, line=line)
        dropped_l1 = self.l1.invalidate(line & self._l1_mask, line)
        dropped_l2 = self.l2.invalidate(line & self._l2_mask, line)
        if dropped_l1 or dropped_l2:
            self.back_invalidations += 1

    def flush_line(self, paddr):
        """clflush: remove the line containing ``paddr`` from every level."""
        line = paddr >> LINE_SHIFT
        self.l1.invalidate(line & self._l1_mask, line)
        self.l2.invalidate(line & self._l2_mask, line)
        self.llc.invalidate(self._llc_index(line), line)

    def warm(self, paddr):
        """Install a line at every level, as a CPU store would leave it.

        The simulated kernel uses this after writing page-table entries
        so freshly-created PTEs start out cached, like on real hardware.
        """
        line = paddr >> LINE_SHIFT
        evicted = self.llc.insert(self._llc_index(line), line)
        if evicted is not None:
            self._back_invalidate(evicted)
        self.l2.insert(line & self._l2_mask, line)
        self.l1.insert(line & self._l1_mask, line)

    def line_cached_in_llc(self, paddr):
        """Whether the line of ``paddr`` is LLC-resident (evaluation only)."""
        line = paddr >> LINE_SHIFT
        return self.llc.contains(self._llc_index(line), line)

    def flush_all(self):
        """Empty every level (privileged; used between experiments)."""
        self.l1.flush_all()
        self.l2.flush_all()
        self.llc.flush_all()

    # -- snapshot protocol (docs/SNAPSHOTS.md) --------------------------

    def state_dict(self):
        """All three levels plus counters.

        The LLC index memo is *not* captured: it is a pure function of
        line addresses for the machine's lifetime and simply re-warms
        after restore without changing behaviour.
        """
        return {
            "l1": self.l1.state_dict(),
            "l2": self.l2.state_dict(),
            "llc": self.llc.state_dict(),
            "back_invalidations": self.back_invalidations,
        }

    def load_state(self, state):
        """Restore state captured by :meth:`state_dict`."""
        self.l1.load_state(state["l1"])
        self.l2.load_state(state["l2"])
        self.llc.load_state(state["llc"])
        self.back_invalidations = state["back_invalidations"]
