"""Three-level inclusive data-cache hierarchy (L1D, L2, sliced LLC).

Inclusivity is the property PThammer needs (Section III-D): because the
LLC is inclusive of L1 and L2, evicting the L1PTE's line from the LLC
back-invalidates it everywhere, forcing the next page-table walk to
DRAM.  ``access`` models that back-invalidation explicitly.

Page-table entries travel through the same hierarchy as user data —
there are no separate PTE caches below the paging-structure caches —
which is why a user-controlled eviction set can evict a kernel-owned
L1PTE line at all.
"""

from repro.cache.setassoc import SetAssociativeCache
from repro.observe import CACHE_EVICT, NULL_TRACE
from repro.observe import CACHE as CACHE_COMPONENT
from repro.utils.rng import hash64
from repro.cache.slices import SliceHash
from repro.params import LINE_SHIFT

#: Levels returned by :meth:`CacheHierarchy.access`.
L1, L2, LLC, MEM = "l1", "l2", "llc", "mem"


class CacheHierarchy:
    """L1D + L2 + sliced inclusive LLC, addressed by physical address."""

    def __init__(self, config, rng, trace=None):
        self.config = config
        #: Trace bus for structured events (docs/OBSERVABILITY.md).
        self._trace = trace if trace is not None else NULL_TRACE
        self.l1 = SetAssociativeCache(
            config.l1_sets, config.l1_ways, config.l1_policy, rng.fork(1), name="L1D"
        )
        self.l2 = SetAssociativeCache(
            config.l2_sets, config.l2_ways, config.l2_policy, rng.fork(2), name="L2"
        )
        self.llc = SetAssociativeCache(
            config.llc_sets_per_slice * config.llc_slices,
            config.llc_ways,
            config.policy,
            rng.fork(3),
            name="LLC",
        )
        self.slice_hash = SliceHash(config.llc_slices, config.slice_masks)
        self._l1_mask = config.l1_sets - 1
        self._l2_mask = config.l2_sets - 1
        self._llc_set_mask = config.llc_sets_per_slice - 1
        self._sets_per_slice = config.llc_sets_per_slice
        self._inclusive = getattr(config, "inclusive", True)
        self._llc_index_key = getattr(config, "llc_index_key", 0)
        self._llc_total_sets = config.llc_sets_per_slice * config.llc_slices
        self.back_invalidations = 0

    def llc_set_and_slice(self, paddr):
        """(set index within slice, slice index) of a physical address."""
        line = paddr >> LINE_SHIFT
        if self._llc_index_key:
            index = self._llc_index(line)
            return index % self._sets_per_slice, index // self._sets_per_slice
        return line & self._llc_set_mask, self.slice_hash.slice_of(paddr)

    def _llc_index(self, line):
        if self._llc_index_key:
            # CEASER/ScatterCache-style keyed index randomisation
            # (Section V): physically-nearby lines land in unrelated
            # sets, so offset-based congruence — and with it eviction-set
            # construction — collapses.
            return hash64(self._llc_index_key, line) % self._llc_total_sets
        set_index = line & self._llc_set_mask
        slice_index = self.slice_hash.slice_of(line << LINE_SHIFT)
        return slice_index * self._sets_per_slice + set_index

    def access(self, paddr):
        """Look up one physical address, filling on miss.

        Returns the level that served the request: ``'l1'``, ``'l2'``,
        ``'llc'``, or ``'mem'`` (LLC miss — the caller must charge DRAM
        latency).  In the non-inclusive configuration fills bypass the
        LLC and L2 victims drop into it instead.
        """
        line = paddr >> LINE_SHIFT
        l1_set = line & self._l1_mask
        if self.l1.lookup(l1_set, line):
            return L1
        l2_set = line & self._l2_mask
        if self.l2.lookup(l2_set, line):
            self.l1.insert(l1_set, line)
            return L2
        llc_index = self._llc_index(line)
        if self.llc.lookup(llc_index, line):
            self._fill_l2(l2_set, line)
            self.l1.insert(l1_set, line)
            return LLC
        if self._inclusive:
            evicted = self.llc.insert(llc_index, line)
            if evicted is not None:
                self._back_invalidate(evicted)
        self._fill_l2(l2_set, line)
        self.l1.insert(l1_set, line)
        return MEM

    def _fill_l2(self, l2_set, line):
        """Install into L2; non-inclusive LLCs absorb the L2 victim."""
        victim = self.l2.insert(l2_set, line)
        if not self._inclusive and victim is not None:
            self.llc.insert(self._llc_index(victim), victim)

    def _back_invalidate(self, line):
        """Drop an LLC-evicted line from the inner levels (inclusivity)."""
        if self._trace.enabled:
            self._trace.emit(CACHE_EVICT, CACHE_COMPONENT, line=line)
        dropped_l1 = self.l1.invalidate(line & self._l1_mask, line)
        dropped_l2 = self.l2.invalidate(line & self._l2_mask, line)
        if dropped_l1 or dropped_l2:
            self.back_invalidations += 1

    def flush_line(self, paddr):
        """clflush: remove the line containing ``paddr`` from every level."""
        line = paddr >> LINE_SHIFT
        self.l1.invalidate(line & self._l1_mask, line)
        self.l2.invalidate(line & self._l2_mask, line)
        self.llc.invalidate(self._llc_index(line), line)

    def warm(self, paddr):
        """Install a line at every level, as a CPU store would leave it.

        The simulated kernel uses this after writing page-table entries
        so freshly-created PTEs start out cached, like on real hardware.
        """
        line = paddr >> LINE_SHIFT
        evicted = self.llc.insert(self._llc_index(line), line)
        if evicted is not None:
            self._back_invalidate(evicted)
        self.l2.insert(line & self._l2_mask, line)
        self.l1.insert(line & self._l1_mask, line)

    def line_cached_in_llc(self, paddr):
        """Whether the line of ``paddr`` is LLC-resident (evaluation only)."""
        line = paddr >> LINE_SHIFT
        return self.llc.contains(self._llc_index(line), line)

    def flush_all(self):
        """Empty every level (privileged; used between experiments)."""
        self.l1.flush_all()
        self.l2.flush_all()
        self.llc.flush_all()
