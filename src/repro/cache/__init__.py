"""Cache substrate: replacement policies, set-associative structures, LLC slices."""

from repro.cache.hierarchy import L1, L2, LLC, MEM, CacheHierarchy
from repro.cache.policies import make_policy, policy_names
from repro.cache.setassoc import SetAssociativeCache
from repro.cache.slices import SliceHash

__all__ = [
    "CacheHierarchy",
    "L1",
    "L2",
    "LLC",
    "MEM",
    "SetAssociativeCache",
    "SliceHash",
    "make_policy",
    "policy_names",
]
