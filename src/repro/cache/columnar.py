"""Columnar set-associative structures: packed array-of-ints state.

The third engine tier (docs/VECTORIZATION.md).  The reference and fast
tiers keep one ``_SetState`` object per materialised set, each holding a
replacement-policy *object* with its own ``DeterministicRng`` instance —
so every probe pays attribute walks and a bound-method call per policy
transition.  At campaign scale those frames dominate the arithmetic.

:class:`ColumnarSetAssociativeCache` stores the same information as
flat per-set columns instead:

``_tags``
    set index -> way array (a plain list; tags are opaque keys, ints
    for data caches and packed ints for the columnar TLB).
``_rngs``
    set index -> the 64-bit splitmix64 state of that set's policy
    stream (what the reference tier wraps in a ``DeterministicRng``).
``_masks``
    set index -> packed PLRU reference-bit mask (bit-PLRU kinds), or
``_stamps`` / ``_clocks``
    set index -> LRU stamp array and clock (LRU kinds).

Policy transitions are inlined integer kernels on those columns —
bit-identical state machines and RNG draw streams to the reference
policies in :mod:`repro.cache.policies`, which the three-tier
equivalence suite (``tests/test_fast_path.py``, ``tests/test_columnar.py``)
enforces whole-run.  ``state_dict()`` emits exactly the reference
encoding (per-set ``{"tags", "policy": {"rng", "mask"|"clock"/"stamps"}}``
in materialisation order), so snapshots move freely between the fast
and columnar tiers.

Only the policies the hot structures actually use have columnar
kernels; :func:`columnar_policy_kind` is how the machine decides
whether a config can run this tier at all (it silently degrades to the
fast tier otherwise — docs/VECTORIZATION.md, "Tier selection").
"""

from repro.cache.policies import (
    _MIX1,
    _MIX2,
    _TWO64,
    _zero_ways_table,
    BitPLRU,
    BitPLRUBimodal,
    NoisyLRU,
    TrueLRU,
)
from repro.errors import ConfigError
from repro.utils.bitops import is_power_of_two
from repro.utils.rng import _GOLDEN, _MASK64, hash64

#: Columnar kernel families.
PLRU, LRU = "plru", "lru"

#: policy name -> (kernel family, parameter).  The parameter is the
#: MRU-insertion probability for PLRU kinds (1.0 = no bimodal draw) and
#: the LRU bias for LRU kinds (None = true LRU, no victim draw).  Read
#: off the reference classes so the constants cannot drift.
_KERNELS = {
    "bit_plru": (PLRU, BitPLRU.insertion_mru_probability),
    "bit_plru_bimodal": (PLRU, BitPLRUBimodal.insertion_mru_probability),
    "true_lru": (LRU, None),
    "noisy_lru": (LRU, NoisyLRU.lru_bias),
}


def columnar_policy_kind(name):
    """(family, param) of a policy's columnar kernel, or ``None``.

    ``None`` means the policy has no packed-state kernel (srrip, random,
    tree_plru, ...) and structures using it must run the fast tier.
    """
    return _KERNELS.get(name)


class ColumnarSetAssociativeCache:
    """Packed-column drop-in for :class:`~repro.cache.setassoc.SetAssociativeCache`.

    Same public surface (``lookup``/``insert``/``invalidate``/
    ``contains``/``flush_all``/``resident_tags``/``occupancy``/counters/
    snapshot protocol) and the same lazy per-set materialisation: a set
    first touched by ``insert`` seeds its policy stream at
    ``hash64(parent_rng_state, index)`` — exactly where the reference
    tier's ``rng.fork(index)`` would start it.

    ``tag_decode``/``tag_encode`` translate between the packed tag
    representation stored in the columns and the reference tag
    representation used in snapshots (the columnar TLB packs its
    ``(as_id, vpn)`` tuples into single ints; data caches store raw
    line ints and need no codec).
    """

    def __init__(
        self, sets, ways, policy, rng, name="cache", tag_decode=None, tag_encode=None
    ):
        if sets <= 0 or not is_power_of_two(sets):
            raise ConfigError("%s: set count must be a positive power of two" % name)
        if ways <= 0:
            raise ConfigError("%s: need at least one way" % name)
        kernel = _KERNELS.get(policy)
        if kernel is None:
            raise ConfigError(
                "%s: policy %r has no columnar kernel (have: %s); "
                "run this structure on the fast tier"
                % (name, policy, ", ".join(sorted(_KERNELS)))
            )
        self.kind, self.param = kernel
        self.sets = sets
        self.ways = ways
        self.policy_name = policy
        self.name = name
        self._rng = rng
        self._tag_decode = tag_decode
        self._tag_encode = tag_encode
        #: Columns (see module docstring).  Insertion order of the dicts
        #: is materialisation order — snapshot-visible state.
        self._tags = {}
        self._rngs = {}
        if self.kind == PLRU:
            self._masks = {}
            self._full = (1 << ways) - 1
            self._table = _zero_ways_table(ways) if ways <= 16 else None
        else:
            self._stamps = {}
            self._clocks = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: Parity with the fast structures (always accelerated).
        self.fast = True
        if self.kind == PLRU:
            self.lookup = self._lookup_plru
            self.insert = self._insert_plru
            self.invalidate = self._invalidate_plru
        else:
            self.lookup = self._lookup_lru
            self.insert = self._insert_lru
            self.invalidate = self._invalidate_lru

    def _materialize(self, index):
        """Create the columns of one set; policy stream = fork(index)."""
        tags = [None] * self.ways
        self._tags[index] = tags
        self._rngs[index] = hash64(self._rng._state, index)
        if self.kind == PLRU:
            self._masks[index] = 0
        else:
            self._stamps[index] = list(range(self.ways))
            self._clocks[index] = self.ways
        return tags

    # -- PLRU kernels (bit_plru / bit_plru_bimodal) ---------------------

    def _lookup_plru(self, set_index, tag):
        """Probe for ``tag``; updates replacement state and hit counters."""
        tags = self._tags.get(set_index)
        if tags is not None and tag in tags:
            bit = 1 << tags.index(tag)
            masks = self._masks
            mask = masks[set_index]
            if not mask & bit:
                mask |= bit
                masks[set_index] = bit if mask == self._full else mask
            self.hits += 1
            return True
        self.misses += 1
        return False

    def _insert_plru(self, set_index, tag):
        """Install ``tag``; return the evicted tag, or None."""
        tags = self._tags.get(set_index)
        if tags is None:
            tags = self._materialize(set_index)
        masks = self._masks
        full = self._full
        if tag in tags:
            bit = 1 << tags.index(tag)
            mask = masks[set_index]
            if not mask & bit:
                mask |= bit
                masks[set_index] = bit if mask == full else mask
            return None
        p = self.param
        if None in tags:
            way = tags.index(None)
            tags[way] = tag
            bit = 1 << way
            if p < 1.0:
                # Bimodal insertion: one random() draw off this set's
                # stream (same as the reference on_fill).
                rngs = self._rngs
                rngs[set_index] = s = (rngs[set_index] + _GOLDEN) & _MASK64
                x = (s + _GOLDEN) & _MASK64
                x = ((x ^ (x >> 30)) * _MIX1) & _MASK64
                x = ((x ^ (x >> 27)) * _MIX2) & _MASK64
                if (x ^ (x >> 31)) / _TWO64 >= p:
                    masks[set_index] &= ~bit  # cold (non-MRU) insertion
                    return None
            mask = masks[set_index]
            if not mask & bit:
                mask |= bit
                masks[set_index] = bit if mask == full else mask
            return None
        # Evict-and-fill, fused: victim draw then (bimodal) fill draw —
        # the same sequence as FastBitPLRU.evict_and_fill.
        mask = masks[set_index]
        table = self._table
        if table is not None:
            zero_ways = table[mask]
        else:
            zero_ways = [w for w in range(self.ways) if not (mask >> w) & 1]
        rngs = self._rngs
        rngs[set_index] = s = (rngs[set_index] + _GOLDEN) & _MASK64
        x = (s + _GOLDEN) & _MASK64
        x = ((x ^ (x >> 30)) * _MIX1) & _MASK64
        x = ((x ^ (x >> 27)) * _MIX2) & _MASK64
        draw = x ^ (x >> 31)
        if zero_ways:
            way = zero_ways[draw % len(zero_ways)]
        else:
            way = draw % self.ways
        evicted = tags[way]
        tags[way] = tag
        self.evictions += 1
        bit = 1 << way
        if p < 1.0:
            rngs[set_index] = s = (rngs[set_index] + _GOLDEN) & _MASK64
            x = (s + _GOLDEN) & _MASK64
            x = ((x ^ (x >> 30)) * _MIX1) & _MASK64
            x = ((x ^ (x >> 27)) * _MIX2) & _MASK64
            if (x ^ (x >> 31)) / _TWO64 >= p:
                masks[set_index] = mask & ~bit
                return evicted
        if not mask & bit:
            mask |= bit
            masks[set_index] = bit if mask == full else mask
        return evicted

    def _invalidate_plru(self, set_index, tag):
        """Drop ``tag`` if resident; return whether it was present."""
        tags = self._tags.get(set_index)
        if tags is not None and tag in tags:
            way = tags.index(tag)
            tags[way] = None
            self._masks[set_index] &= ~(1 << way)
            return True
        return False

    # -- LRU kernels (true_lru / noisy_lru) -----------------------------

    def _lookup_lru(self, set_index, tag):
        """Probe for ``tag``; updates replacement state and hit counters."""
        tags = self._tags.get(set_index)
        if tags is not None and tag in tags:
            clocks = self._clocks
            clock = clocks[set_index]
            self._stamps[set_index][tags.index(tag)] = clock
            clocks[set_index] = clock + 1
            self.hits += 1
            return True
        self.misses += 1
        return False

    def _insert_lru(self, set_index, tag):
        """Install ``tag``; return the evicted tag, or None."""
        tags = self._tags.get(set_index)
        if tags is None:
            tags = self._materialize(set_index)
        clocks = self._clocks
        stamps = self._stamps[set_index]
        if tag in tags:
            clock = clocks[set_index]
            stamps[tags.index(tag)] = clock
            clocks[set_index] = clock + 1
            return None
        if None in tags:
            way = tags.index(None)
            tags[way] = tag
            clock = clocks[set_index]
            stamps[way] = clock
            clocks[set_index] = clock + 1
            return None
        # Victim: true LRU takes the oldest stamp outright; noisy LRU
        # draws once and takes the second-oldest with probability
        # 1 - bias (the reference NoisyLRU.victim sequence).  Stamps are
        # unique (monotonic clock), so index(min) is the argmin.
        way = stamps.index(min(stamps))
        bias = self.param
        if bias is not None and self.ways > 1:
            rngs = self._rngs
            rngs[set_index] = s = (rngs[set_index] + _GOLDEN) & _MASK64
            x = (s + _GOLDEN) & _MASK64
            x = ((x ^ (x >> 30)) * _MIX1) & _MASK64
            x = ((x ^ (x >> 27)) * _MIX2) & _MASK64
            if (x ^ (x >> 31)) / _TWO64 >= bias:
                second = None
                for w, stamp in enumerate(stamps):
                    if w != way and (second is None or stamp < stamps[second]):
                        second = w
                way = second
        evicted = tags[way]
        tags[way] = tag
        clock = clocks[set_index]
        stamps[way] = clock
        clocks[set_index] = clock + 1
        self.evictions += 1
        return evicted

    def _invalidate_lru(self, set_index, tag):
        """Drop ``tag`` if resident; return whether it was present.

        The LRU policies' ``on_invalidate`` is a no-op (the stale stamp
        makes the emptied way the preferred victim), so only the tag
        clears.
        """
        tags = self._tags.get(set_index)
        if tags is not None and tag in tags:
            tags[tags.index(tag)] = None
            return True
        return False

    # -- kind-independent surface ---------------------------------------

    def contains(self, set_index, tag):
        """Probe without side effects (evaluation only)."""
        tags = self._tags.get(set_index)
        return tags is not None and tag in tags

    def flush_all(self):
        """Empty the whole structure (context switch / privileged flush)."""
        self._tags.clear()
        self._rngs.clear()
        if self.kind == PLRU:
            self._masks.clear()
        else:
            self._stamps.clear()
            self._clocks.clear()

    def resident_tags(self, set_index):
        """Tags currently in a set (evaluation only; decoded form)."""
        tags = self._tags.get(set_index)
        if tags is None:
            return []
        decode = self._tag_decode
        if decode is not None:
            return [decode(tag) for tag in tags if tag is not None]
        return [tag for tag in tags if tag is not None]

    def occupancy(self):
        """Total resident entries (evaluation only)."""
        return sum(
            1 for tags in self._tags.values() for tag in tags if tag is not None
        )

    # -- snapshot protocol (docs/SNAPSHOTS.md) --------------------------

    def state_dict(self):
        """Materialised sets plus counters, in the reference encoding.

        Byte-identical to what the reference/fast structure would emit
        after the same operation stream: per-set dicts in
        materialisation order, policy state as ``{"rng", "mask"}`` or
        ``{"rng", "clock", "stamps"}``, tags decoded back to the
        reference representation.  Unmaterialised sets are omitted for
        the same reason as in the reference tier — they regenerate
        bit-identically from the parent stream on first touch.
        """
        decode = self._tag_decode
        plru = self.kind == PLRU
        sets = {}
        for index, tags in self._tags.items():
            if decode is not None:
                out = [None if tag is None else decode(tag) for tag in tags]
            else:
                out = list(tags)
            policy = {"rng": {"state": self._rngs[index]}}
            if plru:
                policy["mask"] = self._masks[index]
            else:
                policy["clock"] = self._clocks[index]
                policy["stamps"] = list(self._stamps[index])
            sets[index] = {"tags": out, "policy": policy}
        return {
            "rng": self._rng.state_dict(),
            "sets": sets,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    def load_state(self, state):
        """Restore state captured by :meth:`state_dict` (either tier's)."""
        self._rng.load_state(state["rng"])
        self.flush_all()
        encode = self._tag_encode
        plru = self.kind == PLRU
        for index, entry in state["sets"].items():
            if encode is not None:
                tags = [None if tag is None else encode(tag) for tag in entry["tags"]]
            else:
                tags = list(entry["tags"])
            self._tags[index] = tags
            policy = entry["policy"]
            self._rngs[index] = policy["rng"]["state"] & _MASK64
            if plru:
                self._masks[index] = policy["mask"]
            else:
                self._clocks[index] = policy["clock"]
                self._stamps[index] = list(policy["stamps"])
        self.hits = state["hits"]
        self.misses = state["misses"]
        self.evictions = state["evictions"]

    def __repr__(self):
        return "ColumnarSetAssociativeCache(%s: %dx%d, policy=%s)" % (
            self.name,
            self.sets,
            self.ways,
            self.policy_name,
        )
