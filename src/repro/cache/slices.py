"""Intel-style LLC slice-selection hash.

The last-level cache is physically split into per-core slices; the slice
a line lands in is an undocumented XOR hash of physical-address bits,
reverse engineered by Hund et al., Irazoqui et al., and Maurice et al.
Each slice-selection bit is the parity of the address ANDed with a mask.

The masks below follow the published two-slice Sandy Bridge function
(bits 17,18,20,22,24,25,26,27,28,30,32 for the single selection bit) and
its four-slice extension.  The hash only involves bits >= 17, which is
what makes the slice *unknowable* from a 4 KiB or even 2 MiB page offset
— the reason Algorithm 2 must discover the right eviction set by timing
rather than computing it.
"""

from repro.errors import ConfigError
from repro.utils.bitops import is_power_of_two, parity

#: Published slice-hash masks (Maurice et al.): one mask per output bit.
_SLICE_BIT_MASKS = (
    0x1B5F575440,  # bits 6..: o0 = p17^p18^p20^p22^p24^p25^p26^p27^p28^p30^p32
    0x2EB5FAA880,  # o1 (used when there are 4 or more slices)
    0x3CCCC93100,  # o2 (8 slices)
)


class SliceHash:
    """Map a physical address to an LLC slice index."""

    def __init__(self, slices, masks=None):
        if not is_power_of_two(slices):
            raise ConfigError("slice count must be a power of two")
        bits_needed = slices.bit_length() - 1
        if masks is None:
            masks = _SLICE_BIT_MASKS[:bits_needed]
        if len(masks) != bits_needed:
            raise ConfigError(
                "need %d slice masks for %d slices, got %d"
                % (bits_needed, slices, len(masks))
            )
        self.slices = slices
        self.masks = tuple(masks)

    def slice_of(self, paddr):
        """Slice index of a physical address."""
        index = 0
        for bit, mask in enumerate(self.masks):
            index |= parity(paddr & mask) << bit
        return index

    def __repr__(self):
        return "SliceHash(slices=%d)" % self.slices
