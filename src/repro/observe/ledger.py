"""Run ledger: a persistent, append-only store of structured run records.

PThammer is a measurement paper — Table II's per-phase costs and
Figure 6's per-round latencies only mean something *longitudinally*,
compared across machine configs and across code revisions.  The ledger
is where those longitudinal numbers live: every ``repro attack``,
every engine ``run_experiment``, and every benchmark appends one JSON
record (run id, git revision, machine-config fingerprint, wall and
virtual-cycle timings, the phase breakdown from the always-on spans, a
:class:`~repro.observe.MetricsRegistry` snapshot, and the outcome) to
a directory of one-file-per-run records — ``.repro/runs/`` by default,
``REPRO_LEDGER_DIR`` to relocate.

On top of the store sits a comparison layer: :func:`diff_records`
computes per-metric deltas between two records with direction-aware
regression detection (timings regress *up*, flip counts regress
*down*), which backs ``repro runs diff`` and ``repro bench
--compare BASELINE``.  See ``docs/RUN_LEDGER.md`` for the record
schema and the CLI workflows.

Layering note: like the rest of :mod:`repro.observe`, this module
knows nothing about machines or attacks.  Records are built *by* the
layers that own the data (the CLI, the experiment engine, the bench
suite) and handed down.
"""

import hashlib
import json
import os
import time
from dataclasses import asdict, dataclass, field, is_dataclass
from typing import Any, Dict, List, Optional

from repro.errors import ConfigError

#: Bump when the record schema changes incompatibly.
LEDGER_SCHEMA_VERSION = 1

#: Environment override for the ledger root directory.
LEDGER_ENV_VAR = "REPRO_LEDGER_DIR"

#: Default ledger root, relative to the current working directory.
DEFAULT_LEDGER_DIR = os.path.join(".repro", "runs")

#: Record kinds the ledger understands (free-form strings are allowed;
#: these are the ones the CLI writes).
ATTACK_RUN = "attack"
EXPERIMENT_RUN = "experiment"
BENCHMARK_RUN = "benchmark"
CAMPAIGN_RUN = "campaign"


# ----------------------------------------------------------------------
# Environment capture


def git_revision(root="."):
    """Best-effort commit hash of the repository containing ``root``.

    Reads ``.git/HEAD`` (and the ref / packed-refs it points at)
    directly — no subprocess, no git binary needed.  Returns ``None``
    outside a repository or on any parse trouble; a run record is
    never worth failing over provenance.
    """
    try:
        directory = os.path.abspath(root)
        while True:
            git_dir = os.path.join(directory, ".git")
            if os.path.isdir(git_dir):
                break
            parent = os.path.dirname(directory)
            if parent == directory:
                return None
            directory = parent
        with open(os.path.join(git_dir, "HEAD"), "r", encoding="utf-8") as handle:
            head = handle.read().strip()
        if not head.startswith("ref:"):
            return head or None
        ref = head.split(None, 1)[1]
        ref_path = os.path.join(git_dir, *ref.split("/"))
        if os.path.exists(ref_path):
            with open(ref_path, "r", encoding="utf-8") as handle:
                return handle.read().strip() or None
        packed = os.path.join(git_dir, "packed-refs")
        if os.path.exists(packed):
            with open(packed, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if line.endswith(" " + ref):
                        return line.split(" ", 1)[0]
        return None
    except OSError:
        return None


def config_fingerprint(config):
    """Short stable hash of a machine config (or any dataclass/dict).

    Two runs with the same fingerprint ran on identically parameterised
    machines, so their virtual-cycle numbers are directly comparable;
    a fingerprint change explains a timing change before anyone blames
    the code.  Non-JSON field values fall back to ``repr``.
    """
    payload = asdict(config) if is_dataclass(config) else config
    blob = json.dumps(payload, sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


# ----------------------------------------------------------------------
# Records


@dataclass
class RunRecord:
    """One run, as persisted: identity, provenance, timings, outcome.

    ``timings`` holds scalar numbers (``host_seconds``,
    ``virtual_cycles``); ``phases`` is the span-derived breakdown
    (``[{"name", "start", "end", "cycles"}, ...]``); ``metrics`` is a
    ``MetricsRegistry.snapshot_values()`` (with the derived percentile
    summaries); ``outcome`` and ``extra`` are free-form JSON objects.
    Use :meth:`new` rather than the bare constructor — it stamps the
    run id, timestamp, and git revision.
    """

    run_id: str
    kind: str
    name: str
    created_utc: str
    schema: int = LEDGER_SCHEMA_VERSION
    label: Optional[str] = None
    git_rev: Optional[str] = None
    machine: Optional[str] = None
    config_fingerprint: Optional[str] = None
    command: Optional[str] = None
    timings: Dict[str, float] = field(default_factory=dict)
    phases: List[dict] = field(default_factory=list)
    metrics: Optional[dict] = None
    outcome: Dict[str, Any] = field(default_factory=dict)
    extra: Dict[str, Any] = field(default_factory=dict)

    @classmethod
    def new(cls, kind, name, **fields):
        """A record with identity and provenance filled in."""
        fields.setdefault("git_rev", git_revision())
        return cls(
            run_id=new_run_id(),
            kind=kind,
            name=name,
            created_utc=time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            **fields,
        )

    def to_json(self):
        """The persisted form (plain dict, JSON-serialisable)."""
        return asdict(self)

    @classmethod
    def from_json(cls, payload):
        """Inverse of :meth:`to_json`; tolerant of unknown keys.

        Malformed payloads — valid JSON that is not a record object, or
        one missing the identity fields — raise :class:`ConfigError`
        like every other ledger problem, so CLI callers report them
        cleanly instead of surfacing an internal traceback.
        """
        if not isinstance(payload, dict):
            raise ConfigError(
                "run record payload must be a JSON object, got %s"
                % type(payload).__name__
            )
        if payload.get("schema") != LEDGER_SCHEMA_VERSION:
            raise ConfigError(
                "run record %r has schema %r; this ledger reads schema %d"
                % (payload.get("run_id"), payload.get("schema"), LEDGER_SCHEMA_VERSION)
            )
        known = {f for f in cls.__dataclass_fields__}
        try:
            return cls(**{key: value for key, value in payload.items() if key in known})
        except TypeError as exc:
            raise ConfigError(
                "run record %r is malformed: %s" % (payload.get("run_id"), exc)
            )

    def comparable_metrics(self):
        """Flat ``{metric name: number}`` view for diffing.

        * ``time.*`` — the scalar timings;
        * ``phase.<name>.cycles`` — per-phase virtual-cycle costs;
        * ``counter.<name>`` — registry counters;
        * ``hist.<name>.mean/p50/p95/p99`` — histogram summaries;
        * numeric ``outcome.*`` fields (booleans count as 0/1);
        * ``telemetry.*`` — the streaming-telemetry summary persisted
          in ``extra["telemetry"]`` (throughput and flip-rate
          mean/peak, merged latency percentiles, per-group flips), so
          ``repro runs diff`` compares two runs' live curves too.
        """
        flat = {}
        for key, value in self.timings.items():
            if isinstance(value, (int, float)):
                flat["time.%s" % key] = value
        for phase in self.phases:
            cycles = phase.get("cycles")
            if isinstance(cycles, (int, float)):
                flat["phase.%s.cycles" % phase.get("name")] = cycles
        snapshot = self.metrics or {}
        for name, value in snapshot.get("counters", {}).items():
            flat["counter.%s" % name] = value
        for name, hist in snapshot.get("histograms", {}).items():
            if hist.get("count"):
                flat["hist.%s.mean" % name] = hist["total"] / hist["count"]
            for p_name, p_value in (hist.get("percentiles") or {}).items():
                flat["hist.%s.%s" % (name, p_name)] = p_value
        for key, value in self.outcome.items():
            if isinstance(value, bool):
                flat["outcome.%s" % key] = int(value)
            elif isinstance(value, (int, float)):
                flat["outcome.%s" % key] = value
        telemetry = (self.extra or {}).get("telemetry") or {}
        totals = telemetry.get("totals") or {}
        for key in (
            "throughput_mean",
            "throughput_peak",
            "flips_per_sec_mean",
            "flips_per_sec_peak",
            "latency_p50",
            "latency_p95",
            "latency_p99",
        ):
            value = totals.get(key)
            if isinstance(value, (int, float)):
                flat["telemetry.%s" % key] = value
        for group, stats in sorted((telemetry.get("groups") or {}).items()):
            flips = stats.get("flips") if isinstance(stats, dict) else None
            if isinstance(flips, (int, float)):
                flat["telemetry.group.%s.flips" % group] = flips
        return flat

    def summary_line(self):
        """One row for ``repro runs list``."""
        seconds = self.timings.get("host_seconds")
        return "%-22s %-10s %-14s %-12s %-20s %8s %s" % (
            self.run_id,
            self.kind,
            (self.name or "")[:14],
            (self.machine or "")[:12],
            self.created_utc,
            "%.2fs" % seconds if seconds is not None else "-",
            self.label or "",
        )


_RUN_ID_COUNTER = [0]


def new_run_id():
    """A sortable, collision-resistant run id.

    ``YYYYmmddTHHMMSS-xxxxxx``: a UTC timestamp prefix (records sort
    chronologically by filename) plus six hex chars hashed from the
    pid, a process-local counter, and the monotonic clock.
    """
    _RUN_ID_COUNTER[0] += 1
    material = "%d:%d:%d" % (
        os.getpid(),
        _RUN_ID_COUNTER[0],
        time.monotonic_ns(),
    )
    suffix = hashlib.sha256(material.encode("utf-8")).hexdigest()[:6]
    return time.strftime("%Y%m%dT%H%M%S", time.gmtime()) + "-" + suffix


# ----------------------------------------------------------------------
# The store


class RunLedger:
    """Append-only directory of run records, one JSON file per run.

    The root resolves, in order: the ``root`` argument, the
    ``REPRO_LEDGER_DIR`` environment variable, ``.repro/runs`` under
    the current working directory.  Records are written atomically
    (temp file + rename) and never mutated or deleted by this class —
    the ledger is the project's longitudinal memory.
    """

    def __init__(self, root=None):
        self.root = root or os.environ.get(LEDGER_ENV_VAR) or DEFAULT_LEDGER_DIR

    def path(self, run_id):
        """The file a record with ``run_id`` lives (or would live) at."""
        return os.path.join(self.root, run_id + ".json")

    def record(self, record):
        """Persist one :class:`RunRecord`; returns the file path."""
        os.makedirs(self.root, exist_ok=True)
        path = self.path(record.run_id)
        if os.path.exists(path):
            raise ConfigError("run %s is already recorded at %s" % (record.run_id, path))
        temp = path + ".tmp"
        with open(temp, "w", encoding="utf-8") as handle:
            json.dump(record.to_json(), handle, sort_keys=True, indent=1)
            handle.write("\n")
        os.replace(temp, path)
        return path

    def run_ids(self):
        """All recorded run ids, oldest first."""
        if not os.path.isdir(self.root):
            return []
        return sorted(
            name[: -len(".json")]
            for name in os.listdir(self.root)
            if name.endswith(".json")
        )

    def load(self, run_id):
        """Load one record; unique prefixes of a run id are accepted."""
        path = self.path(run_id)
        if not os.path.exists(path):
            matches = [rid for rid in self.run_ids() if rid.startswith(run_id)]
            if len(matches) == 1:
                path = self.path(matches[0])
            elif len(matches) > 1:
                raise ConfigError(
                    "run id prefix %r is ambiguous (%s)" % (run_id, ", ".join(matches))
                )
            else:
                raise ConfigError(
                    "no run %r in ledger %s (%d record(s))"
                    % (run_id, self.root, len(self.run_ids()))
                )
        with open(path, "r", encoding="utf-8") as handle:
            try:
                payload = json.load(handle)
            except ValueError as exc:
                raise ConfigError("run record %s is not valid JSON: %s" % (path, exc))
        return RunRecord.from_json(payload)

    def list(self, kind=None, name=None, label=None, limit=None, on_skip=None):
        """Records matching the filters, oldest first.

        ``limit`` keeps the *newest* N matches and — because run ids
        sort chronologically by filename — walks the directory newest
        first and stops loading files as soon as N matches are found,
        so ``repro runs list`` stays fast on campaign-scale ledgers.

        With ``on_skip`` given, a truncated or otherwise unreadable
        record never aborts the listing: it is skipped and
        ``on_skip(run_id, error)`` is called so the caller can warn —
        one damaged file (a disk-full tear, a record from a future
        schema) must not hide every healthy record around it.  Without
        ``on_skip`` a damaged record raises, as callers that *resolve*
        a specific record (baseline comparison) must see the damage.
        """
        records = []
        for run_id in reversed(self.run_ids()):
            if limit is not None and len(records) >= limit:
                break
            try:
                record = self.load(run_id)
            except ConfigError as exc:
                if on_skip is None:
                    raise
                on_skip(run_id, exc)
                continue
            if kind is not None and record.kind != kind:
                continue
            if name is not None and record.name != name:
                continue
            if label is not None and record.label != label:
                continue
            records.append(record)
        records.reverse()
        return records

    def latest(self, kind=None, name=None, label=None, on_skip=None):
        """Most recent matching record, or ``None``."""
        records = self.list(kind=kind, name=name, label=label, limit=1, on_skip=on_skip)
        return records[-1] if records else None


# ----------------------------------------------------------------------
# Comparison


#: Metric-name fragments whose *decrease* is the regression (an attack
#: reproduction that stops flipping bits got worse, not faster; an
#: equivalence flag dropping from 1 to 0 is a correctness failure).
_HIGHER_IS_BETTER_MARKERS = (
    "flip",
    "escalated",
    "throughput",
    "speedup",
    "_equal",
    "collapse",
)


def metric_direction(name):
    """``"down"`` when lower is better (timings), else ``"up"``."""
    lowered = name.lower()
    if any(marker in lowered for marker in _HIGHER_IS_BETTER_MARKERS):
        return "up"
    return "down"


@dataclass
class MetricDelta:
    """One metric compared across two records."""

    name: str
    before: float
    after: float
    direction: str  # "down" = lower is better, "up" = higher is better
    regressed: bool

    @property
    def delta(self):
        return self.after - self.before

    @property
    def ratio(self):
        """``after / before`` (``None`` when before is zero)."""
        return self.after / self.before if self.before else None


@dataclass
class RunDiff:
    """Per-metric comparison of two run records."""

    before_id: str
    after_id: str
    tolerance: float
    deltas: List[MetricDelta]
    only_before: List[str]
    only_after: List[str]

    def regressions(self):
        """Deltas that moved the wrong way beyond the tolerance."""
        return [delta for delta in self.deltas if delta.regressed]

    def render(self):
        """Plain-text comparison table, regressions flagged."""
        lines = [
            "run diff: %s -> %s (tolerance %.0f%%)"
            % (self.before_id, self.after_id, self.tolerance * 100),
            "%-44s %14s %14s %9s" % ("metric", "before", "after", "change"),
        ]
        for delta in self.deltas:
            if delta.ratio is None:
                change = "n/a" if delta.after == delta.before else "new!=0"
            else:
                change = "%+.1f%%" % ((delta.ratio - 1.0) * 100)
            flag = "  REGRESSED" if delta.regressed else ""
            lines.append(
                "%-44s %14s %14s %9s%s"
                % (delta.name, _fmt(delta.before), _fmt(delta.after), change, flag)
            )
        for name in self.only_before:
            lines.append("%-44s (only in %s)" % (name, self.before_id))
        for name in self.only_after:
            lines.append("%-44s (only in %s)" % (name, self.after_id))
        regressions = self.regressions()
        lines.append(
            "%d metric(s) compared, %d regression(s)"
            % (len(self.deltas), len(regressions))
        )
        return "\n".join(lines)


def _fmt(value):
    if isinstance(value, float) and not value.is_integer():
        return "%.3f" % value
    return "%d" % value


def _regressed(before, after, direction, tolerance):
    """Whether ``after`` is worse than ``before`` beyond ``tolerance``.

    Tolerance is a fraction of the baseline: with 0.1, a timing may
    grow up to 10% (a flip count may shrink up to 10%) before it
    counts.  A zero baseline regresses on any move in the wrong
    direction — there is no scale to be tolerant against.
    """
    if direction == "down":
        return after > before * (1.0 + tolerance) if before else after > 0
    return after < before * (1.0 - tolerance) if before else False


def diff_records(before, after, tolerance=0.1, metrics=None):
    """Compare two :class:`RunRecord`\\ s metric by metric.

    ``metrics`` restricts the comparison to names for which
    ``predicate(name)`` is true (a callable) or to an explicit
    collection of names; by default every metric present in both
    records is compared.
    """
    before_metrics = before.comparable_metrics()
    after_metrics = after.comparable_metrics()
    if metrics is not None:
        keep = metrics if callable(metrics) else (lambda name: name in set(metrics))
        before_metrics = {k: v for k, v in before_metrics.items() if keep(k)}
        after_metrics = {k: v for k, v in after_metrics.items() if keep(k)}
    shared = sorted(set(before_metrics) & set(after_metrics))
    deltas = []
    for name in shared:
        direction = metric_direction(name)
        deltas.append(
            MetricDelta(
                name=name,
                before=before_metrics[name],
                after=after_metrics[name],
                direction=direction,
                regressed=_regressed(
                    before_metrics[name], after_metrics[name], direction, tolerance
                ),
            )
        )
    return RunDiff(
        before_id=before.run_id,
        after_id=after.run_id,
        tolerance=tolerance,
        deltas=deltas,
        only_before=sorted(set(before_metrics) - set(after_metrics)),
        only_after=sorted(set(after_metrics) - set(before_metrics)),
    )
