"""Streaming telemetry: per-worker spools and a parent-side aggregator.

The experiment engine fans tasks across forked worker processes; until
now the only live signal crossing that boundary was the per-task
progress callback.  This module adds a *streaming* channel sized for
campaign-scale runs (docs/TELEMETRY.md):

* :class:`TelemetryEmitter` — lives in each worker process and appends
  bounded JSON lines (heartbeats and per-task deltas: phase, flips,
  virtual cycles, a mergeable latency sketch) to its own spool file
  ``worker-<pid>.jsonl``.  One file per pid means no cross-process
  locking; each line is flushed whole, so a killed worker never leaves
  more than one torn line.
* :class:`TelemetryAggregator` — lives in the parent (or in a separate
  ``repro dash`` process) and incrementally tails every spool file,
  folding the deltas into rolling time-series (throughput, flips/sec,
  p50/p95/p99 hammer-round latency via
  :class:`~repro.observe.metrics.CycleHistogram` merges) plus
  per-worker liveness and per-config flip counters.
* :class:`TelemetrySession` — the parent-side lifecycle object the
  engine drives: ``begin`` creates the spool directory and arms the
  (fork-inherited) worker emitter configuration *before* the pool
  forks, ``poll`` advances the aggregator, and ``finish`` writes the
  ``run-end`` marker and returns the summary persisted into the run
  ledger (``RunRecord.extra["telemetry"]``).

Spool directories live under ``.repro/telemetry`` next to the run
ledger; ``REPRO_TELEMETRY_DIR`` relocates the root.  Everything here
writes to files and reads clocks only — never to stdout — so rendered
experiment results stay byte-identical with telemetry on or off.
"""

import json
import os
import time

from repro.errors import ConfigError
from repro.observe.ledger import DEFAULT_LEDGER_DIR, LEDGER_ENV_VAR, new_run_id
from repro.observe.metrics import CycleHistogram

#: Bump when the spool line format changes incompatibly.
STREAM_SCHEMA_VERSION = 1

#: Environment override for the telemetry spool root directory.
TELEMETRY_ENV_VAR = "REPRO_TELEMETRY_DIR"


def default_spool_root():
    """The spool root: env override, else a sibling of the run ledger.

    With the stock ledger at ``.repro/runs`` this is
    ``.repro/telemetry``; with ``REPRO_LEDGER_DIR`` relocated (as the
    test suite does per-test) the spool root follows it, so isolated
    ledgers get isolated telemetry for free.
    """
    override = os.environ.get(TELEMETRY_ENV_VAR)
    if override:
        return override
    ledger_root = os.environ.get(LEDGER_ENV_VAR) or DEFAULT_LEDGER_DIR
    parent = os.path.dirname(os.path.normpath(ledger_root))
    return os.path.join(parent or ".", "telemetry")


def discover_spool(root=None):
    """Newest spool directory under ``root`` (or ``None`` when empty).

    Spool directory names start with a sortable run id, so the
    lexicographically last entry holding a ``run.jsonl`` is the most
    recently started run — what ``repro dash`` attaches to by default.
    """
    root = root or default_spool_root()
    if not os.path.isdir(root):
        return None
    for name in sorted(os.listdir(root), reverse=True):
        candidate = os.path.join(root, name)
        if os.path.isfile(os.path.join(candidate, "run.jsonl")):
            return candidate
    return None


def _append_line(path, entry):
    """Append one JSON line, flushed whole (crash leaves <= 1 torn line)."""
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(entry, sort_keys=True) + "\n")


# ----------------------------------------------------------------------
# Worker side: the emitter


class TelemetryEmitter:
    """Appends one worker's telemetry deltas to its own spool file.

    One emitter per process; the spool file is keyed by pid so forked
    pool workers never contend.  ``heartbeat`` is rate-limited to
    ``heartbeat_interval`` host seconds; ``task_done`` always writes
    (it is the bounded metric delta the aggregator folds in).
    """

    def __init__(self, spool_dir, heartbeat_interval=1.0, clock=time.time):
        self.spool_dir = spool_dir
        self.pid = os.getpid()
        self.path = os.path.join(spool_dir, "worker-%d.jsonl" % self.pid)
        self.heartbeat_interval = heartbeat_interval
        self.clock = clock
        self._last_heartbeat = None

    def heartbeat(self, phase=None):
        """Announce liveness (and the task being chewed on), rate-limited."""
        now = self.clock()
        if (
            self._last_heartbeat is not None
            and now - self._last_heartbeat < self.heartbeat_interval
        ):
            return False
        self._last_heartbeat = now
        _append_line(
            self.path,
            {"type": "heartbeat", "t": now, "pid": self.pid, "phase": phase},
        )
        return True

    def task_done(
        self,
        key,
        seconds,
        flips=0,
        cycles=0,
        latency=None,
        group=None,
        ok=True,
    ):
        """Record one finished task's delta.

        ``latency`` is a :class:`CycleHistogram` (or its ``state_dict``)
        of this task's hammer-round span lengths — mergeable, so the
        aggregator can fold sketches from any number of workers into
        exact combined percentile estimates.
        """
        if isinstance(latency, CycleHistogram):
            latency = latency.state_dict() if latency.count else None
        now = self.clock()
        self._last_heartbeat = now  # a task line proves liveness too
        _append_line(
            self.path,
            {
                "type": "task",
                "t": now,
                "pid": self.pid,
                "key": key,
                "group": group,
                "ok": bool(ok),
                "seconds": round(seconds, 6),
                "flips": flips,
                "cycles": cycles,
                "latency": latency,
            },
        )


#: Spool directory armed by the parent before the pool forks; forked
#: workers inherit it and lazily build their own emitter (same pattern
#: as the engine's ``_WORKER_STATE`` and ``warmstart.activate``).
_EMITTER_CONFIG = None
_EMITTERS = {}


def activate_emitters(spool_dir):
    """Arm per-process emitters (call in the parent, pre-fork)."""
    global _EMITTER_CONFIG
    _EMITTER_CONFIG = spool_dir


def deactivate_emitters():
    """Disarm emitters in this process (workers die with the pool)."""
    global _EMITTER_CONFIG
    _EMITTER_CONFIG = None
    _EMITTERS.clear()


def current_emitter():
    """This process's emitter, or ``None`` when telemetry is off.

    Keyed by pid so a process forked *after* activation (a pool
    worker) builds its own emitter on first use instead of inheriting
    the parent's file handle or heartbeat state.
    """
    if _EMITTER_CONFIG is None:
        return None
    pid = os.getpid()
    emitter = _EMITTERS.get(pid)
    if emitter is None or emitter.spool_dir != _EMITTER_CONFIG:
        emitter = TelemetryEmitter(_EMITTER_CONFIG)
        _EMITTERS.clear()  # entries from before a fork belong to the parent
        _EMITTERS[pid] = emitter
    return emitter


# ----------------------------------------------------------------------
# Rolling time-series with bounded memory


class SeriesBuckets:
    """Fixed-size time-bucketed series; width doubles instead of growing.

    Observations land in the bucket ``int(t / width)``.  When an
    observation falls beyond ``max_buckets``, adjacent buckets are
    pairwise-merged and the width doubles — deterministic, O(1)
    amortised, and memory stays bounded however long the run is.  Each
    bucket folds tasks, flips, cycles, task-seconds, and a mergeable
    latency sketch.
    """

    def __init__(self, max_buckets=120, initial_width=0.5):
        if max_buckets < 2:
            raise ConfigError("SeriesBuckets needs at least 2 buckets")
        self.max_buckets = max_buckets
        self.width = float(initial_width)
        self._buckets = {}

    @staticmethod
    def _empty():
        return {
            "tasks": 0,
            "flips": 0,
            "cycles": 0,
            "seconds": 0.0,
            "errors": 0,
            "latency": CycleHistogram(),
        }

    def add(self, t, tasks=1, flips=0, cycles=0, seconds=0.0, errors=0,
            latency_state=None):
        """Fold one task delta observed at relative time ``t``."""
        t = max(0.0, t)
        while int(t / self.width) >= self.max_buckets:
            self._halve()
        bucket = self._buckets.setdefault(int(t / self.width), self._empty())
        bucket["tasks"] += tasks
        bucket["flips"] += flips
        bucket["cycles"] += cycles
        bucket["seconds"] += seconds
        bucket["errors"] += errors
        if latency_state:
            bucket["latency"].merge_snapshot(latency_state)

    def _halve(self):
        merged = {}
        for index, bucket in self._buckets.items():
            target = merged.setdefault(index // 2, self._empty())
            for key in ("tasks", "flips", "cycles", "errors"):
                target[key] += bucket[key]
            target["seconds"] += bucket["seconds"]
            if bucket["latency"].count:
                target["latency"].merge_snapshot(bucket["latency"].state_dict())
        self._buckets = merged
        self.width *= 2.0

    def snapshot(self):
        """JSON-serialisable bucket list with derived per-bucket rates."""
        rows = []
        for index in sorted(self._buckets):
            bucket = self._buckets[index]
            latency = bucket["latency"]
            rows.append(
                {
                    "t": round(index * self.width, 3),
                    "tasks": bucket["tasks"],
                    "flips": bucket["flips"],
                    "cycles": bucket["cycles"],
                    "errors": bucket["errors"],
                    "tasks_per_sec": round(bucket["tasks"] / self.width, 4),
                    "flips_per_sec": round(bucket["flips"] / self.width, 4),
                    "latency": latency.snapshot() if latency.count else None,
                }
            )
        return {"width": self.width, "buckets": rows}


# ----------------------------------------------------------------------
# Parent side: the aggregator


#: A worker is presumed dead after this many heartbeat intervals of
#: silence (display concern only; the engine's watchdog is the
#: authority on hung workers).
LIVENESS_FACTOR = 3.0


class TelemetryAggregator:
    """Incrementally merges a spool directory into rolling statistics.

    ``poll()`` tails ``run.jsonl`` plus every ``worker-*.jsonl`` from
    the byte offset it last reached — cheap enough to call once per
    finished task, and safe to call from a different process than the
    writers (``repro dash`` attaches to a live run's spool).  Torn
    trailing lines (a worker killed mid-write) are retried on the next
    poll and never abort aggregation.
    """

    def __init__(self, spool_dir, clock=time.time, max_buckets=120):
        if not os.path.isdir(spool_dir):
            raise ConfigError("no telemetry spool at %s" % spool_dir)
        self.spool_dir = spool_dir
        self.clock = clock
        self.meta = {}
        self.finished = None  # the run-end entry, once seen
        self.workers = {}
        self.groups = {}
        self.series = SeriesBuckets(max_buckets=max_buckets)
        self.latency = CycleHistogram()
        self.tasks = 0
        self.flips = 0
        self.cycles = 0
        self.errors = 0
        self.started_at = None
        self.last_event_at = None
        self._offsets = {}

    # -- ingest ----------------------------------------------------------

    def poll(self):
        """Ingest new spool lines; returns how many were applied."""
        applied = 0
        names = []
        run_path = os.path.join(self.spool_dir, "run.jsonl")
        if os.path.isfile(run_path):
            names.append("run.jsonl")
        try:
            entries = sorted(os.listdir(self.spool_dir))
        except OSError:
            entries = []
        names.extend(
            name
            for name in entries
            if name.startswith("worker-") and name.endswith(".jsonl")
        )
        for name in names:
            applied += self._drain(name)
        return applied

    def _drain(self, name):
        path = os.path.join(self.spool_dir, name)
        offset = self._offsets.get(name, 0)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                handle.seek(offset)
                chunk = handle.read()
        except OSError:
            return 0
        applied = 0
        consumed = 0
        for line in chunk.splitlines(keepends=True):
            if not line.endswith("\n"):
                break  # torn trailing write; retry on the next poll
            consumed += len(line.encode("utf-8"))
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                continue  # a damaged line is skipped, never fatal
            self._apply(entry)
            applied += 1
        self._offsets[name] = offset + consumed
        return applied

    def _apply(self, entry):
        kind = entry.get("type")
        timestamp = entry.get("t")
        if isinstance(timestamp, (int, float)):
            if self.started_at is None:
                self.started_at = timestamp
            self.last_event_at = timestamp
        if kind == "run-begin":
            self.meta = entry
            self.started_at = entry.get("t", self.started_at)
        elif kind == "run-end":
            self.finished = entry
        elif kind == "heartbeat":
            worker = self._worker(entry.get("pid"))
            worker["last_seen"] = timestamp
            worker["phase"] = entry.get("phase")
        elif kind == "task":
            self._apply_task(entry, timestamp)

    def _worker(self, pid):
        worker = self.workers.get(pid)
        if worker is None:
            worker = self.workers[pid] = {
                "tasks": 0,
                "flips": 0,
                "errors": 0,
                "seconds": 0.0,
                "last_seen": None,
                "phase": None,
            }
        return worker

    def _apply_task(self, entry, timestamp):
        ok = entry.get("ok", True)
        flips = entry.get("flips") or 0
        cycles = entry.get("cycles") or 0
        seconds = entry.get("seconds") or 0.0
        latency = entry.get("latency")
        worker = self._worker(entry.get("pid"))
        worker["tasks"] += 1
        worker["flips"] += flips
        worker["seconds"] += seconds
        worker["last_seen"] = timestamp
        worker["phase"] = entry.get("key")
        if not ok:
            worker["errors"] += 1
            self.errors += 1
        self.tasks += 1
        self.flips += flips
        self.cycles += cycles
        if latency:
            self.latency.merge_snapshot(latency)
        group = entry.get("group")
        if group:
            stats = self.groups.setdefault(group, {"tasks": 0, "flips": 0})
            stats["tasks"] += 1
            stats["flips"] += flips
        relative = 0.0
        if timestamp is not None and self.started_at is not None:
            relative = timestamp - self.started_at
        self.series.add(
            relative,
            flips=flips,
            cycles=cycles,
            seconds=seconds,
            errors=0 if ok else 1,
            latency_state=latency,
        )

    # -- derived views ---------------------------------------------------

    def elapsed(self):
        """Seconds from run-begin to the last event (or now, if live)."""
        if self.started_at is None:
            return 0.0
        end = self.last_event_at if self.finished else self.clock()
        return max(0.0, (end or self.started_at) - self.started_at)

    def tasks_total(self):
        return self.meta.get("tasks")

    def throughput(self):
        """Mean finished tasks per second over the run so far."""
        elapsed = self.elapsed()
        return self.tasks / elapsed if elapsed > 0 else 0.0

    def flips_per_sec(self):
        elapsed = self.elapsed()
        return self.flips / elapsed if elapsed > 0 else 0.0

    def eta_seconds(self):
        """Estimated seconds to completion (``None`` when unknowable)."""
        total = self.tasks_total()
        rate = self.throughput()
        if total is None or rate <= 0 or self.finished:
            return None
        return max(0.0, (total - self.tasks) / rate)

    def worker_liveness(self, interval=1.0):
        """``{pid: "alive"|"silent"|"done"}`` from heartbeat recency."""
        status = {}
        now = self.clock()
        for pid, worker in self.workers.items():
            if self.finished:
                status[pid] = "done"
            elif worker["last_seen"] is None:
                status[pid] = "silent"
            elif now - worker["last_seen"] <= LIVENESS_FACTOR * interval:
                status[pid] = "alive"
            else:
                status[pid] = "silent"
        return status

    def worker_silence(self, pid):
        """Seconds since ``pid``'s last spool line; ``None`` if never seen.

        The campaign supervisor's liveness check: a worker that has
        neither heartbeat nor task line for longer than its
        ``liveness_timeout`` is presumed hung and killed.  ``None``
        (no line yet) is not silence — a freshly forked worker hasn't
        had a chance to speak, so callers should measure from launch
        time instead.
        """
        worker = self.workers.get(pid)
        if worker is None or worker["last_seen"] is None:
            return None
        return max(0.0, self.clock() - worker["last_seen"])

    def summary(self):
        """The JSON document persisted into ``RunRecord.extra``."""
        elapsed = self.elapsed()
        series = self.series.snapshot()
        peak_tasks = max(
            (bucket["tasks_per_sec"] for bucket in series["buckets"]), default=0.0
        )
        peak_flips = max(
            (bucket["flips_per_sec"] for bucket in series["buckets"]), default=0.0
        )
        percentiles = self.latency.percentiles()
        totals = {
            "tasks": self.tasks,
            "flips": self.flips,
            "cycles": self.cycles,
            "errors": self.errors,
            "duration_seconds": round(elapsed, 3),
            "throughput_mean": round(self.throughput(), 4),
            "throughput_peak": peak_tasks,
            "flips_per_sec_mean": round(self.flips_per_sec(), 4),
            "flips_per_sec_peak": peak_flips,
        }
        for name, value in percentiles.items():
            totals["latency_%s" % name] = round(value, 1)
        return {
            "schema": STREAM_SCHEMA_VERSION,
            "experiment": self.meta.get("experiment"),
            "jobs": self.meta.get("jobs"),
            "tasks_total": self.tasks_total(),
            "bucket_seconds": series["width"],
            "buckets": series["buckets"],
            "workers": {
                str(pid): {
                    "tasks": worker["tasks"],
                    "flips": worker["flips"],
                    "errors": worker["errors"],
                    "seconds": round(worker["seconds"], 3),
                }
                for pid, worker in self.workers.items()
            },
            "groups": self.groups,
            "totals": totals,
        }


# ----------------------------------------------------------------------
# Parent side: the session lifecycle


class TelemetrySession:
    """One run's telemetry lifecycle, driven by the engine.

    ``begin`` must run *before* the worker pool forks: it creates the
    spool directory, writes the ``run-begin`` marker, arms the
    fork-inherited emitter configuration, and builds the aggregator.
    ``finish`` disarms the emitters, drains the spools one final time,
    writes ``run-end``, and returns the summary document.
    """

    def __init__(self, root=None, clock=time.time):
        self.root = root or default_spool_root()
        self.clock = clock
        self.spool_dir = None
        self.aggregator = None

    def begin(self, experiment, total, jobs=1):
        if self.spool_dir is not None:
            raise ConfigError("telemetry session already began")
        name = "%s-%s" % (new_run_id(), experiment)
        self.spool_dir = os.path.join(self.root, name)
        os.makedirs(self.spool_dir, exist_ok=True)
        _append_line(
            os.path.join(self.spool_dir, "run.jsonl"),
            {
                "type": "run-begin",
                "schema": STREAM_SCHEMA_VERSION,
                "experiment": experiment,
                "tasks": total,
                "jobs": jobs,
                "pid": os.getpid(),
                "t": self.clock(),
            },
        )
        activate_emitters(self.spool_dir)
        self.aggregator = TelemetryAggregator(self.spool_dir, clock=self.clock)
        return self.spool_dir

    def poll(self):
        """Advance the aggregator (called per finished task)."""
        if self.aggregator is not None:
            self.aggregator.poll()

    def finish(self, completed=True):
        """Seal the spool and return the summary for the run ledger."""
        if self.spool_dir is None:
            return None
        deactivate_emitters()
        _append_line(
            os.path.join(self.spool_dir, "run.jsonl"),
            {"type": "run-end", "completed": bool(completed), "t": self.clock()},
        )
        self.aggregator.poll()
        summary = self.aggregator.summary()
        self.spool_dir = None
        return summary
