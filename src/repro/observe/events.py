"""Event taxonomy for the structured trace (see docs/OBSERVABILITY.md).

The paper's methodology is measurement: Section III calibrates
eviction-set sizes from Intel PMCs, Table II reports per-phase costs,
and Figure 6 reports per-round hammer latencies.  The trace layer makes
the simulated machine observable at the same grain — every
microarchitecturally meaningful step (a TLB miss, a page-table-entry
fetch, a DRAM row activation, a bit flip) can be emitted as one
structured :class:`Event` on the shared :class:`~repro.observe.bus.TraceBus`.

Kinds are dotted strings grouped by the emitting subsystem; the full
taxonomy with per-kind fields is tabulated in ``docs/OBSERVABILITY.md``.
"""

# -- machine-level events ------------------------------------------------
#: One completed user-level load/store (fields: vaddr, paddr, latency,
#: source, level).
ACCESS = "access"
#: A page fault taken and serviced by the kernel (fields: vaddr, write).
FAULT = "fault"

# -- TLB events ----------------------------------------------------------
#: Translation served by a TLB structure (fields: level, vpn).
TLB_HIT = "tlb.hit"
#: Full TLB miss — a page-table walk begins (fields: vpn).
TLB_MISS = "tlb.miss"
#: A TLB entry lost its slot to a new insertion (fields: structure).
TLB_EVICT = "tlb.evict"

# -- page-table-walker events --------------------------------------------
#: One page-table-entry fetch through the data caches (fields: pt_level,
#: served, cycles, paddr).
WALK_FETCH = "walk.fetch"

# -- data-cache events ---------------------------------------------------
#: An LLC eviction back-invalidating the inner levels (fields: line).
CACHE_EVICT = "cache.evict"

# -- DRAM events ---------------------------------------------------------
#: A row activation — the unit of rowhammer disturbance (fields: bank,
#: row, case, cycles).
DRAM_ACTIVATE = "dram.activate"
#: A request served by the open row, no activation (fields: bank, row,
#: cycles).
DRAM_HIT = "dram.hit"
#: Disturbance state cleared by refresh (fields: bank, mode, window or
#: rows).
DRAM_REFRESH = "dram.refresh"
#: A disturbance-induced bit flip materialised in physical memory
#: (fields: paddr, bit, bank, row).
DRAM_FLIP = "dram.flip"

# -- chaos events (system-noise injection, repro.chaos) ------------------
#: A background-noise burst polluted shared state (fields: source,
#: lines or entries).
CHAOS_POLLUTE = "chaos.pollute"
#: Kernel page-table churn ran (fields: migrated, dropped).
CHAOS_CHURN = "chaos.churn"
#: A transient fault was injected into one access (fields: vaddr).
CHAOS_FAULT = "chaos.fault"

# -- recovery events (self-healing pipeline) ------------------------------
#: A phase or operation was retried after a recoverable error (fields:
#: phase, attempt, error, backoff).
RECOVERY_RETRY = "recovery.retry"
#: An eviction set (TLB or LLC) was re-verified and rebuilt (fields:
#: kind, target or offset).
RECOVERY_REBUILD = "recovery.rebuild"
#: The attack degraded to a weaker strategy instead of aborting
#: (fields: strategy, reason).
RECOVERY_FALLBACK = "recovery.fallback"
#: A phase resumed from checkpointed state instead of re-running
#: (fields: phase).
RECOVERY_RESUME = "recovery.resume"

# -- span events ---------------------------------------------------------
#: A phase scope opened/closed (fields: name, depth); spans are *also*
#: always recorded on ``TraceBus.spans`` even when event tracing is off.
SPAN_BEGIN = "span.begin"
SPAN_END = "span.end"

#: Component tags: the subsystem an event describes.
MACHINE, TLB, WALKER, CACHE, DRAM, ATTACK, CHAOS = (
    "machine",
    "tlb",
    "walker",
    "cache",
    "dram",
    "attack",
    "chaos",
)

#: Every kind above, for validation and documentation tooling.
ALL_KINDS = (
    ACCESS,
    FAULT,
    TLB_HIT,
    TLB_MISS,
    TLB_EVICT,
    WALK_FETCH,
    CACHE_EVICT,
    DRAM_ACTIVATE,
    DRAM_HIT,
    DRAM_REFRESH,
    DRAM_FLIP,
    CHAOS_POLLUTE,
    CHAOS_CHURN,
    CHAOS_FAULT,
    RECOVERY_RETRY,
    RECOVERY_REBUILD,
    RECOVERY_FALLBACK,
    RECOVERY_RESUME,
    SPAN_BEGIN,
    SPAN_END,
)


class Event:
    """One structured trace record.

    ``cycle`` is the virtual-clock timestamp (the machine's ``rdtsc``
    at the start of the instruction that produced the event), so events
    are naturally ordered and can be correlated with span ranges.
    ``fields`` holds the kind-specific payload (plain ints/strings only,
    so the JSONL export is lossless).
    """

    __slots__ = ("kind", "component", "cycle", "fields")

    def __init__(self, kind, component, cycle, fields):
        self.kind = kind
        self.component = component
        self.cycle = cycle
        self.fields = fields

    def to_dict(self):
        """Flat dict for the JSONL trace-file schema."""
        record = {
            "type": "event",
            "kind": self.kind,
            "component": self.component,
            "cycle": self.cycle,
        }
        record.update(self.fields)
        return record

    def __repr__(self):
        return "Event(%s, %s, cycle=%d, %r)" % (
            self.kind,
            self.component,
            self.cycle,
            self.fields,
        )


class Span:
    """A named [start, end] range on the virtual clock.

    Spans implement the phase scopes of :class:`PThammerAttack` (the
    Table-II timeline) and the per-round hammer costs (Figure 6).  They
    are recorded unconditionally — a handful of appends per attack is
    free — while high-frequency events stay opt-in.
    """

    __slots__ = ("name", "start", "end", "depth")

    def __init__(self, name, start, end=None, depth=0):
        self.name = name
        self.start = start
        self.end = end
        self.depth = depth

    @property
    def cycles(self):
        """Span length on the virtual clock (0 while still open)."""
        return 0 if self.end is None else self.end - self.start

    def contains(self, cycle):
        """Whether a timestamp falls inside this (closed) span."""
        return self.end is not None and self.start <= cycle <= self.end

    def to_dict(self):
        """Flat dict for the JSONL trace-file schema."""
        return {
            "type": "span",
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "depth": self.depth,
        }

    def __repr__(self):
        return "Span(%s, %s..%s, depth=%d)" % (
            self.name,
            self.start,
            self.end,
            self.depth,
        )
