"""The trace bus: a low-overhead, opt-in event stream.

Design rule (enforced by the overhead benchmark in ``benchmarks/``):
when tracing is disabled, an instrumented hot path pays exactly one
attribute read and branch —

    if self._trace.enabled:
        self._trace.emit(...)

``enabled`` is a plain boolean attribute, never a property, so the
guard compiles to a dict lookup.  Every emitting component receives the
machine's bus at construction time (or the shared :data:`NULL_TRACE`
when built standalone), so there is no global state and two machines
never share a trace.

Spans (phase scopes) are different: they are recorded *unconditionally*
on :attr:`TraceBus.spans` because they occur a handful of times per
attack phase — that is what lets ``report.timeline`` and
``report.round_costs`` always derive from the trace, while the
per-access event firehose stays opt-in.
"""

from repro.observe.events import SPAN_BEGIN, SPAN_END, ATTACK, Event, Span


def _zero_clock():
    """Default clock for buses not yet attached to a machine."""
    return 0


class TraceSampler:
    """Deterministic per-category sampling and hard event budgets.

    Keeps tracing affordable during campaigns: instead of recording
    every event, the sampler admits a deterministic stride of each
    event *kind* (e.g. rate 0.01 keeps the 1st, 101st, 201st ...
    ``dram.activate``), and per-category budgets cap how many events a
    category may record over the bus's lifetime no matter the rate.
    Stride sampling (rather than RNG) keeps traced runs reproducible:
    the same workload always keeps the same events.

    ``rates`` and ``budgets`` map an event kind (``"dram.activate"``),
    a category (the kind's prefix before the first dot, ``"dram"``),
    or the wildcard ``"*"`` to a sample fraction / event cap; the most
    specific match wins.  Unmatched kinds are admitted untouched.
    """

    #: Countdown value standing in for "keep nothing" (rate <= 0): large
    #: enough that the per-kind countdown never reaches the keep branch.
    _NEVER = 1 << 60

    def __init__(self, rates=None, budgets=None):
        self.rates = dict(rates or {})
        self.budgets = dict(budgets or {})
        self.kept = 0
        self.sampled_out = 0
        self.budget_dropped = 0
        self._spent = {}  # budget key -> events admitted against it
        self._strides = {}  # kind -> resolved stride (None = unlimited)
        self._budget_keys = {}  # kind -> resolved budget key (or None)
        # kind -> events to drop before the next keep.  The skip path —
        # the overwhelmingly common one at campaign sample rates — costs
        # one dict read and one int store (see the overhead guard in
        # benchmarks/test_observe_overhead.py).
        self._countdown = {}

    @staticmethod
    def category(kind):
        """The category of an event kind: its prefix before the dot."""
        return kind.split(".", 1)[0]

    @staticmethod
    def _lookup(mapping, kind):
        """Most-specific match: exact kind, then category, then ``*``."""
        if kind in mapping:
            return kind
        category = TraceSampler.category(kind)
        if category in mapping:
            return category
        if "*" in mapping:
            return "*"
        return None

    def _stride(self, kind):
        stride = self._strides.get(kind, -1)
        if stride != -1:
            return stride
        key = self._lookup(self.rates, kind)
        if key is None:
            stride = None  # no rate configured: keep everything
        else:
            rate = self.rates[key]
            if rate <= 0:
                stride = 0  # keep nothing
            elif rate >= 1:
                stride = 1
            else:
                stride = max(1, round(1.0 / rate))
        self._strides[kind] = stride
        return stride

    def admit(self, kind):
        """Whether this occurrence of ``kind`` should be recorded."""
        left = self._countdown.get(kind)
        if left:
            self._countdown[kind] = left - 1
            self.sampled_out += 1
            return False
        # left is None (first occurrence of the kind) or 0 (this event
        # is the stride's keep slot) — both resolve through the cache.
        stride = self._stride(kind)
        if stride == 0:
            self._countdown[kind] = self._NEVER
            self.sampled_out += 1
            return False
        if stride is not None:
            self._countdown[kind] = stride - 1
        budget_key = self._budget_keys.get(kind, -1)
        if budget_key == -1:
            budget_key = self._lookup(self.budgets, kind)
            self._budget_keys[kind] = budget_key
        if budget_key is not None:
            spent = self._spent.get(budget_key, 0)
            if spent >= self.budgets[budget_key]:
                self.budget_dropped += 1
                return False
            self._spent[budget_key] = spent + 1
        self.kept += 1
        return True

    def stats(self):
        """JSON-serialisable counters (exported in trace headers)."""
        return {
            "seen": self.kept + self.sampled_out + self.budget_dropped,
            "kept": self.kept,
            "sampled_out": self.sampled_out,
            "budget_dropped": self.budget_dropped,
            "rates": dict(self.rates),
            "budgets": dict(self.budgets),
        }


def parse_rate_spec(text):
    """``"0.01"`` or ``"dram=0.1,tlb=0.5,*=0.01"`` -> a rates dict."""
    return _parse_spec(text, float, "sample rate")


def parse_budget_spec(text):
    """``"100000"`` or ``"dram=50000,*=200000"`` -> a budgets dict."""
    return _parse_spec(text, int, "event budget")


def _parse_spec(text, convert, what):
    text = text.strip()
    if not text:
        raise ValueError("empty %s spec" % what)
    if "=" not in text:
        return {"*": convert(text)}
    spec = {}
    for token in text.split(","):
        token = token.strip()
        if not token:
            continue
        if "=" not in token:
            raise ValueError(
                "bad %s token %r (want category=value)" % (what, token)
            )
        key, _, value = token.partition("=")
        spec[key.strip()] = convert(value)
    if not spec:
        raise ValueError("empty %s spec" % what)
    return spec


class TraceBus:
    """Structured event sink shared by every layer of one machine.

    The bus owns the virtual clock reference (``clock`` is a callable
    returning the current cycle; :class:`~repro.machine.machine.Machine`
    points it at its own cycle counter), so emit sites never need to
    thread timestamps through.
    """

    #: Default cap on buffered events; beyond it events are counted in
    #: ``dropped`` instead of stored, bounding memory on long runs.
    DEFAULT_LIMIT = 2_000_000

    def __init__(self, limit=DEFAULT_LIMIT):
        #: The single hot-path guard.  Callers must check this before
        #: calling :meth:`emit`.
        self.enabled = False
        self.events = []
        self.spans = []
        self.dropped = 0
        self.clock = _zero_clock
        #: Optional :class:`TraceSampler`; ``None`` records everything.
        self.sampler = None
        self._limit = limit
        self._subscribers = []
        self._depth = 0

    # -- lifecycle -------------------------------------------------------

    def enable(self):
        """Start recording events (spans are always recorded)."""
        self.enabled = True

    def disable(self):
        """Stop recording events; the buffer is kept."""
        self.enabled = False

    def clear(self):
        """Drop all buffered events and spans (between experiments)."""
        self.events = []
        self.spans = []
        self.dropped = 0

    def set_sampling(self, rates=None, budgets=None):
        """Install (or clear) trace sampling; returns the sampler.

        See :class:`TraceSampler` for the ``rates``/``budgets``
        vocabulary.  Sampling decisions happen inside :meth:`emit`, so
        the disabled-path contract (one plain ``enabled`` check) is
        untouched; an enabled-but-sampled bus pays one extra
        ``admit()`` per would-be event, which is what makes always-on
        tracing affordable during campaigns (the ``sampled-trace-loop``
        benchmark gates it).
        """
        if rates or budgets:
            self.sampler = TraceSampler(rates, budgets)
        else:
            self.sampler = None
        return self.sampler

    # -- events ----------------------------------------------------------

    def emit(self, kind, component, **fields):
        """Record one event at the current virtual cycle.

        Only call under an ``if bus.enabled:`` guard — the guard, not
        this method, is the disabled-path cost contract.
        """
        sampler = self.sampler
        if sampler is not None:
            # Inlined skip path of TraceSampler.admit: at campaign
            # sample rates nearly every emit lands here, and the extra
            # method call is the difference between passing and failing
            # the sampled-tracing overhead guard.
            countdown = sampler._countdown
            left = countdown.get(kind)
            if left:
                countdown[kind] = left - 1
                sampler.sampled_out += 1
                return None
            if not sampler.admit(kind):
                return None
        event = Event(kind, component, self.clock(), fields)
        if len(self.events) < self._limit:
            self.events.append(event)
        else:
            self.dropped += 1
        if self._subscribers:
            for subscriber in self._subscribers:
                subscriber(event)
        return event

    def subscribe(self, callback):
        """Stream events to ``callback(event)`` as they are emitted."""
        self._subscribers.append(callback)
        return callback

    def unsubscribe(self, callback):
        """Remove a streaming subscriber."""
        self._subscribers.remove(callback)

    # -- spans -----------------------------------------------------------

    def span(self, name):
        """Open a phase scope; use as a context manager.

        Nested spans get increasing ``depth``; the attack's Table-II
        timeline is the depth-0 spans.  Span begin/end also surface as
        events when event tracing is enabled, so a JSONL trace carries
        the phase structure inline.
        """
        return _SpanScope(self, name)

    def add_span(self, name, start, end):
        """Record an already-measured span (e.g. one hammer round)."""
        span = Span(name, start, end, self._depth)
        self.spans.append(span)
        return span

    def spans_named(self, name, start_index=0):
        """All closed spans with ``name``, from ``start_index`` on."""
        return [
            span
            for span in self.spans[start_index:]
            if span.name == name and span.end is not None
        ]

    # -- queries ---------------------------------------------------------

    def events_between(self, start, end):
        """Events whose timestamp falls in ``[start, end]``."""
        return [event for event in self.events if start <= event.cycle <= end]

    def counts_by_kind(self):
        """Histogram of event kinds (diagnostics and tests)."""
        counts = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def __len__(self):
        return len(self.events)

    def __repr__(self):
        return "TraceBus(enabled=%s, events=%d, spans=%d, dropped=%d)" % (
            self.enabled,
            len(self.events),
            len(self.spans),
            self.dropped,
        )


class _SpanScope:
    """Context manager recording one span on a bus."""

    __slots__ = ("_bus", "_span")

    def __init__(self, bus, name):
        self._bus = bus
        self._span = Span(name, bus.clock(), None, bus._depth)

    def __enter__(self):
        bus = self._bus
        span = self._span
        bus.spans.append(span)
        bus._depth += 1
        if bus.enabled:
            bus.emit(SPAN_BEGIN, ATTACK, name=span.name, depth=span.depth)
        return span

    def __exit__(self, exc_type, exc, tb):
        bus = self._bus
        span = self._span
        span.end = bus.clock()
        bus._depth -= 1
        if bus.enabled:
            bus.emit(SPAN_END, ATTACK, name=span.name, depth=span.depth)
        return False


class NullTrace:
    """Inert bus for components constructed outside a machine.

    ``enabled`` is always False and cannot be switched on; attempting to is
    a usage error (enable the owning machine's bus instead).
    """

    enabled = False

    def emit(self, kind, component, **fields):
        """No-op (only reachable if a caller skipped the guard)."""
        return None

    def add_span(self, name, start, end):
        """No-op; standalone components keep no span history."""
        return None

    def span(self, name):
        raise RuntimeError(
            "cannot open spans on the null trace; construct the component "
            "with a real TraceBus (machines wire one automatically)"
        )

    def enable(self):
        raise RuntimeError(
            "cannot enable the shared null trace; pass trace=TraceBus() "
            "to the component (machines wire one automatically)"
        )


#: Shared inert bus; the default ``trace`` of standalone components.
NULL_TRACE = NullTrace()
