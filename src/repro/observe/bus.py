"""The trace bus: a low-overhead, opt-in event stream.

Design rule (enforced by the overhead benchmark in ``benchmarks/``):
when tracing is disabled, an instrumented hot path pays exactly one
attribute read and branch —

    if self._trace.enabled:
        self._trace.emit(...)

``enabled`` is a plain boolean attribute, never a property, so the
guard compiles to a dict lookup.  Every emitting component receives the
machine's bus at construction time (or the shared :data:`NULL_TRACE`
when built standalone), so there is no global state and two machines
never share a trace.

Spans (phase scopes) are different: they are recorded *unconditionally*
on :attr:`TraceBus.spans` because they occur a handful of times per
attack phase — that is what lets ``report.timeline`` and
``report.round_costs`` always derive from the trace, while the
per-access event firehose stays opt-in.
"""

from repro.observe.events import SPAN_BEGIN, SPAN_END, ATTACK, Event, Span


def _zero_clock():
    """Default clock for buses not yet attached to a machine."""
    return 0


class TraceBus:
    """Structured event sink shared by every layer of one machine.

    The bus owns the virtual clock reference (``clock`` is a callable
    returning the current cycle; :class:`~repro.machine.machine.Machine`
    points it at its own cycle counter), so emit sites never need to
    thread timestamps through.
    """

    #: Default cap on buffered events; beyond it events are counted in
    #: ``dropped`` instead of stored, bounding memory on long runs.
    DEFAULT_LIMIT = 2_000_000

    def __init__(self, limit=DEFAULT_LIMIT):
        #: The single hot-path guard.  Callers must check this before
        #: calling :meth:`emit`.
        self.enabled = False
        self.events = []
        self.spans = []
        self.dropped = 0
        self.clock = _zero_clock
        self._limit = limit
        self._subscribers = []
        self._depth = 0

    # -- lifecycle -------------------------------------------------------

    def enable(self):
        """Start recording events (spans are always recorded)."""
        self.enabled = True

    def disable(self):
        """Stop recording events; the buffer is kept."""
        self.enabled = False

    def clear(self):
        """Drop all buffered events and spans (between experiments)."""
        self.events = []
        self.spans = []
        self.dropped = 0

    # -- events ----------------------------------------------------------

    def emit(self, kind, component, **fields):
        """Record one event at the current virtual cycle.

        Only call under an ``if bus.enabled:`` guard — the guard, not
        this method, is the disabled-path cost contract.
        """
        event = Event(kind, component, self.clock(), fields)
        if len(self.events) < self._limit:
            self.events.append(event)
        else:
            self.dropped += 1
        if self._subscribers:
            for subscriber in self._subscribers:
                subscriber(event)
        return event

    def subscribe(self, callback):
        """Stream events to ``callback(event)`` as they are emitted."""
        self._subscribers.append(callback)
        return callback

    def unsubscribe(self, callback):
        """Remove a streaming subscriber."""
        self._subscribers.remove(callback)

    # -- spans -----------------------------------------------------------

    def span(self, name):
        """Open a phase scope; use as a context manager.

        Nested spans get increasing ``depth``; the attack's Table-II
        timeline is the depth-0 spans.  Span begin/end also surface as
        events when event tracing is enabled, so a JSONL trace carries
        the phase structure inline.
        """
        return _SpanScope(self, name)

    def add_span(self, name, start, end):
        """Record an already-measured span (e.g. one hammer round)."""
        span = Span(name, start, end, self._depth)
        self.spans.append(span)
        return span

    def spans_named(self, name, start_index=0):
        """All closed spans with ``name``, from ``start_index`` on."""
        return [
            span
            for span in self.spans[start_index:]
            if span.name == name and span.end is not None
        ]

    # -- queries ---------------------------------------------------------

    def events_between(self, start, end):
        """Events whose timestamp falls in ``[start, end]``."""
        return [event for event in self.events if start <= event.cycle <= end]

    def counts_by_kind(self):
        """Histogram of event kinds (diagnostics and tests)."""
        counts = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def __len__(self):
        return len(self.events)

    def __repr__(self):
        return "TraceBus(enabled=%s, events=%d, spans=%d, dropped=%d)" % (
            self.enabled,
            len(self.events),
            len(self.spans),
            self.dropped,
        )


class _SpanScope:
    """Context manager recording one span on a bus."""

    __slots__ = ("_bus", "_span")

    def __init__(self, bus, name):
        self._bus = bus
        self._span = Span(name, bus.clock(), None, bus._depth)

    def __enter__(self):
        bus = self._bus
        span = self._span
        bus.spans.append(span)
        bus._depth += 1
        if bus.enabled:
            bus.emit(SPAN_BEGIN, ATTACK, name=span.name, depth=span.depth)
        return span

    def __exit__(self, exc_type, exc, tb):
        bus = self._bus
        span = self._span
        span.end = bus.clock()
        bus._depth -= 1
        if bus.enabled:
            bus.emit(SPAN_END, ATTACK, name=span.name, depth=span.depth)
        return False


class NullTrace:
    """Inert bus for components constructed outside a machine.

    ``enabled`` is always False and cannot be switched on; attempting to is
    a usage error (enable the owning machine's bus instead).
    """

    enabled = False

    def emit(self, kind, component, **fields):
        """No-op (only reachable if a caller skipped the guard)."""
        return None

    def add_span(self, name, start, end):
        """No-op; standalone components keep no span history."""
        return None

    def span(self, name):
        raise RuntimeError(
            "cannot open spans on the null trace; construct the component "
            "with a real TraceBus (machines wire one automatically)"
        )

    def enable(self):
        raise RuntimeError(
            "cannot enable the shared null trace; pass trace=TraceBus() "
            "to the component (machines wire one automatically)"
        )


#: Shared inert bus; the default ``trace`` of standalone components.
NULL_TRACE = NullTrace()
