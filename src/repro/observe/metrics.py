"""Metrics registry: counters, histograms, and timers.

This replaces and supersedes the original 44-line ``PerfCounters``
dict (which survives as a thin compatibility shim in
:mod:`repro.machine.perf`).  Three instrument types:

* **counters** — monotonic named integers; the PMC emulation
  (``dtlb_load_misses.miss_causes_a_walk`` etc.) lives here.
* **histograms** — power-of-two-bucketed distributions for latencies
  and costs; count/sum/min/max plus bucket counts, so percentilish
  summaries cost O(64) memory regardless of sample count.
* **timers** — context managers measuring a virtual-cycle span into a
  histogram.

All instruments are created on first use; names are free-form dotted
strings (``"hammer.round_cycles"``).  A registry belongs to one
machine (``machine.metrics``) but standalone use is fine too.
"""

from repro.errors import ConfigError


class CycleHistogram:
    """Power-of-two-bucketed distribution of non-negative values.

    Bucket ``i`` counts values with bit length ``i``, i.e. value 0 in
    bucket 0, values ``[2**(i-1), 2**i)`` in bucket ``i`` — the right
    resolution for cycle costs spanning decades (an L1 hit is ~4
    cycles, a row-conflict DRAM access ~hundreds).
    """

    __slots__ = ("count", "total", "minimum", "maximum", "buckets")

    def __init__(self):
        self.count = 0
        self.total = 0
        self.minimum = None
        self.maximum = None
        #: bucket index (``int.bit_length`` of the value) -> count.
        self.buckets = {}

    def observe(self, value):
        """Fold one observation in."""
        if value < 0:
            raise ConfigError("histograms take non-negative values, got %r" % value)
        self.count += 1
        self.total += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        bucket = int(value).bit_length()
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    @property
    def mean(self):
        """Arithmetic mean (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, fraction):
        """Estimated ``fraction``-quantile from the bucket counts.

        The rank convention matches :func:`repro.utils.stats.percentile`
        (``fraction * (count - 1)``, linear interpolation); since only
        bucket counts survive, the value is interpolated uniformly
        within the bucket containing the rank and clamped to the
        observed ``[minimum, maximum]``.  For buckets one power of two
        wide the estimate is within a factor of two of the exact value
        — plenty for regression tracking across runs.  Raises on an
        empty histogram, like its exact counterpart.
        """
        if not self.count:
            raise ConfigError("percentile of an empty histogram")
        if not 0.0 <= fraction <= 1.0:
            raise ConfigError("fraction must be within [0, 1]")
        # The extremes are tracked exactly; don't approximate them.
        if fraction == 0.0:
            return float(self.minimum)
        if fraction == 1.0:
            return float(self.maximum)
        rank = fraction * (self.count - 1)
        cumulative = 0
        for bucket in sorted(self.buckets):
            in_bucket = self.buckets[bucket]
            if cumulative + in_bucket > rank:
                lo, hi = self.bucket_bounds(bucket)
                within = (rank - cumulative) / in_bucket
                estimate = lo + (hi - lo) * within
                return min(max(estimate, self.minimum), self.maximum)
            cumulative += in_bucket
        return float(self.maximum)

    #: The percentile summaries rendered and persisted everywhere.
    SUMMARY_PERCENTILES = (("p50", 0.50), ("p95", 0.95), ("p99", 0.99))

    def percentiles(self):
        """``{"p50": ..., "p95": ..., "p99": ...}`` (empty dict if no data)."""
        if not self.count:
            return {}
        return {
            name: self.percentile(fraction)
            for name, fraction in self.SUMMARY_PERCENTILES
        }

    def bucket_bounds(self, bucket):
        """The half-open value range ``[lo, hi)`` of one bucket."""
        if bucket == 0:
            return 0, 1
        return 1 << (bucket - 1), 1 << bucket

    def snapshot(self):
        """JSON-serialisable dump of this histogram's state.

        Bucket indices become strings (JSON object keys), so a snapshot
        survives a ``json.dumps``/``loads`` round trip unchanged —
        that is what the experiment engine ships across process
        boundaries and stores in run checkpoints.

        ``percentiles`` is derived (p50/p95/p99 estimates for run
        ledger records and dashboards); :meth:`merge_snapshot` ignores
        it and recomputes from the merged buckets.
        """
        return {
            "count": self.count,
            "total": self.total,
            "minimum": self.minimum,
            "maximum": self.maximum,
            "buckets": {str(bucket): n for bucket, n in self.buckets.items()},
            "percentiles": self.percentiles(),
        }

    def merge_snapshot(self, snapshot):
        """Fold a :meth:`snapshot` (possibly from another process) in."""
        if not snapshot["count"]:
            return
        self.count += snapshot["count"]
        self.total += snapshot["total"]
        if self.minimum is None or snapshot["minimum"] < self.minimum:
            self.minimum = snapshot["minimum"]
        if self.maximum is None or snapshot["maximum"] > self.maximum:
            self.maximum = snapshot["maximum"]
        for bucket, n in snapshot["buckets"].items():
            bucket = int(bucket)
            self.buckets[bucket] = self.buckets.get(bucket, 0) + n

    # -- snapshot protocol (docs/SNAPSHOTS.md) --------------------------

    def state_dict(self):
        """Exact histogram state (no derived percentiles)."""
        return {
            "count": self.count,
            "total": self.total,
            "minimum": self.minimum,
            "maximum": self.maximum,
            "buckets": {str(bucket): n for bucket, n in self.buckets.items()},
        }

    def load_state(self, state):
        """Restore state captured by :meth:`state_dict`."""
        self.count = state["count"]
        self.total = state["total"]
        self.minimum = state["minimum"]
        self.maximum = state["maximum"]
        self.buckets = {int(bucket): n for bucket, n in state["buckets"].items()}

    def summary(self):
        """One-line human-readable recap."""
        if not self.count:
            return "empty"
        quantiles = self.percentiles()
        return "n=%d mean=%.1f p50=%.0f p95=%.0f p99=%.0f min=%d max=%d" % (
            self.count,
            self.mean,
            quantiles["p50"],
            quantiles["p95"],
            quantiles["p99"],
            self.minimum,
            self.maximum,
        )


class _Timer:
    """Context manager observing a clocked span into a histogram."""

    __slots__ = ("_histogram", "_clock", "_start")

    def __init__(self, histogram, clock):
        self._histogram = histogram
        self._clock = clock
        self._start = 0

    def __enter__(self):
        self._start = self._clock()
        return self

    def __exit__(self, exc_type, exc, tb):
        self._histogram.observe(self._clock() - self._start)
        return False


class MetricsRegistry:
    """Named counters and histograms with snapshot/delta support."""

    def __init__(self):
        self._counters = {}
        self._histograms = {}
        #: Bumped by :meth:`reset`; snapshots taken before a reset are
        #: recognisably stale (see ``PerfCounters.delta``).
        self.generation = 0

    # -- counters --------------------------------------------------------

    def inc(self, name, amount=1):
        """Add to a counter, creating it at zero."""
        self._counters[name] = self._counters.get(name, 0) + amount

    def read(self, name):
        """Current value of a counter (0 if never incremented)."""
        return self._counters.get(name, 0)

    def counters(self):
        """Copy of all counters."""
        return dict(self._counters)

    # -- histograms ------------------------------------------------------

    def observe(self, name, value):
        """Fold a value into a histogram, creating it on first use."""
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = CycleHistogram()
        histogram.observe(value)

    def histogram(self, name):
        """The histogram named ``name``, creating it empty on demand."""
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = CycleHistogram()
        return histogram

    def histograms(self):
        """Mapping of all live histograms (shared objects, not copies)."""
        return dict(self._histograms)

    def timer(self, name, clock):
        """Context manager timing a span of ``clock`` into ``name``."""
        return _Timer(self.histogram(name), clock)

    # -- snapshots -------------------------------------------------------

    def snapshot_values(self):
        """JSON-serialisable dump of every instrument.

        ``{"counters": {name: value}, "histograms": {name: histogram
        snapshot}}`` — the unit the experiment engine collects from each
        worker machine and folds into a run-level registry with
        :meth:`merge_snapshot`.

        (Renamed from ``snapshot()`` so that name unambiguously means
        the machine-state protocol of docs/SNAPSHOTS.md.)
        """
        return {
            "counters": dict(self._counters),
            "histograms": {
                name: histogram.snapshot()
                for name, histogram in self._histograms.items()
            },
        }

    def merge_snapshot(self, snapshot):
        """Fold a :meth:`snapshot` from another registry (or process) in.

        Counters add; histograms merge count/total/min/max and bucket
        counts.  Merging is associative and commutative, so any
        aggregation order over a set of worker snapshots produces the
        same run-level registry.
        """
        for name, value in snapshot.get("counters", {}).items():
            self.inc(name, value)
        for name, histogram_snapshot in snapshot.get("histograms", {}).items():
            self.histogram(name).merge_snapshot(histogram_snapshot)

    # -- snapshot protocol (docs/SNAPSHOTS.md) ---------------------------

    def state_dict(self):
        """Exact registry state, including the reset generation."""
        return {
            "counters": dict(self._counters),
            "histograms": {
                name: histogram.state_dict()
                for name, histogram in self._histograms.items()
            },
            "generation": self.generation,
        }

    def load_state(self, state):
        """Restore state captured by :meth:`state_dict`."""
        self._counters = dict(state["counters"])
        self._histograms = {}
        for name, histogram_state in state["histograms"].items():
            histogram = CycleHistogram()
            histogram.load_state(histogram_state)
            self._histograms[name] = histogram
        self.generation = state["generation"]

    # -- lifecycle -------------------------------------------------------

    def reset(self):
        """Zero all instruments and invalidate earlier snapshots."""
        self._counters.clear()
        self._histograms.clear()
        self.generation += 1

    def render(self):
        """Plain-text dump of every instrument, sorted by name."""
        lines = []
        for name in sorted(self._counters):
            lines.append("%-44s %12d" % (name, self._counters[name]))
        for name in sorted(self._histograms):
            lines.append("%-44s %s" % (name, self._histograms[name].summary()))
        return "\n".join(lines) if lines else "(no metrics recorded)"

    def __repr__(self):
        return "MetricsRegistry(counters=%d, histograms=%d, generation=%d)" % (
            len(self._counters),
            len(self._histograms),
            self.generation,
        )
