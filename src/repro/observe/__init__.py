"""Observability layer: tracing, spans, metrics, and the run ledger.

This package sits *below* the machine in the dependency order — it
knows nothing about caches, TLBs, or DRAM; those layers emit into it.
See ``docs/OBSERVABILITY.md`` for the event taxonomy, the metrics
API, the JSONL trace-file schema, and a worked example correlating a
Figure-6 hammer round with its TLB/LLC/DRAM events, and
``docs/RUN_LEDGER.md`` for the persistent run-record store
(:mod:`repro.observe.ledger`) behind ``repro runs`` and ``repro
bench``.

Typical use::

    machine = Machine(tiny_test_config())
    machine.trace.enable()                      # opt in to events
    ... run the attack ...
    machine.trace.counts_by_kind()              # quick look
    write_trace_jsonl(machine.trace, "out.jsonl")   # repro.analysis
"""

from repro.observe.bus import (
    NULL_TRACE,
    NullTrace,
    TraceBus,
    TraceSampler,
    parse_budget_spec,
    parse_rate_spec,
)
from repro.observe.events import (
    ACCESS,
    ALL_KINDS,
    ATTACK,
    CACHE,
    CHAOS,
    DRAM,
    MACHINE,
    TLB,
    WALKER,
    CACHE_EVICT,
    CHAOS_CHURN,
    CHAOS_FAULT,
    CHAOS_POLLUTE,
    DRAM_ACTIVATE,
    DRAM_FLIP,
    DRAM_HIT,
    DRAM_REFRESH,
    FAULT,
    RECOVERY_FALLBACK,
    RECOVERY_REBUILD,
    RECOVERY_RESUME,
    RECOVERY_RETRY,
    SPAN_BEGIN,
    SPAN_END,
    TLB_EVICT,
    TLB_HIT,
    TLB_MISS,
    WALK_FETCH,
    Event,
    Span,
)
from repro.observe.ledger import (
    ATTACK_RUN,
    BENCHMARK_RUN,
    EXPERIMENT_RUN,
    LEDGER_ENV_VAR,
    LEDGER_SCHEMA_VERSION,
    MetricDelta,
    RunDiff,
    RunLedger,
    RunRecord,
    config_fingerprint,
    diff_records,
    git_revision,
    metric_direction,
    new_run_id,
)
from repro.observe.metrics import CycleHistogram, MetricsRegistry
from repro.observe.stream import (
    STREAM_SCHEMA_VERSION,
    TELEMETRY_ENV_VAR,
    SeriesBuckets,
    TelemetryAggregator,
    TelemetryEmitter,
    TelemetrySession,
    current_emitter,
    default_spool_root,
    discover_spool,
)

__all__ = [
    "STREAM_SCHEMA_VERSION",
    "TELEMETRY_ENV_VAR",
    "SeriesBuckets",
    "TelemetryAggregator",
    "TelemetryEmitter",
    "TelemetrySession",
    "TraceSampler",
    "current_emitter",
    "default_spool_root",
    "discover_spool",
    "parse_budget_spec",
    "parse_rate_spec",
    "ATTACK_RUN",
    "BENCHMARK_RUN",
    "EXPERIMENT_RUN",
    "LEDGER_ENV_VAR",
    "LEDGER_SCHEMA_VERSION",
    "MetricDelta",
    "RunDiff",
    "RunLedger",
    "RunRecord",
    "config_fingerprint",
    "diff_records",
    "git_revision",
    "metric_direction",
    "new_run_id",
    "ACCESS",
    "ALL_KINDS",
    "ATTACK",
    "CACHE",
    "CACHE_EVICT",
    "CHAOS",
    "CHAOS_CHURN",
    "CHAOS_FAULT",
    "CHAOS_POLLUTE",
    "DRAM",
    "MACHINE",
    "TLB",
    "WALKER",
    "CycleHistogram",
    "DRAM_ACTIVATE",
    "DRAM_FLIP",
    "DRAM_HIT",
    "DRAM_REFRESH",
    "Event",
    "FAULT",
    "MetricsRegistry",
    "NULL_TRACE",
    "NullTrace",
    "RECOVERY_FALLBACK",
    "RECOVERY_REBUILD",
    "RECOVERY_RESUME",
    "RECOVERY_RETRY",
    "SPAN_BEGIN",
    "SPAN_END",
    "Span",
    "TLB_EVICT",
    "TLB_HIT",
    "TLB_MISS",
    "TraceBus",
    "WALK_FETCH",
]
