"""Quickstart: boot a simulated machine and run PThammer end to end.

Runs the complete unprivileged attack — timing calibration, eviction-set
construction, page-table spraying, double-sided pair verification,
implicit hammering, flip detection, and privilege escalation — against
a small undefended machine, then prints what happened.

    python examples/quickstart.py
"""

import time

from repro import AttackerView, Inspector, Machine, tiny_test_config
from repro.core import PThammerAttack, PThammerConfig


def main():
    machine = Machine(tiny_test_config(seed=1))
    attacker = AttackerView(machine, machine.boot_process())
    print("Booted %s; attacker uid = %d" % (machine.config.name, attacker.getuid()))

    config = PThammerConfig(spray_slots=256, pair_sample=16, max_pairs=14)
    started = time.time()
    report = PThammerAttack(attacker, config).run()
    host_seconds = time.time() - started

    print()
    print(report.summary())
    print()
    print("attacker uid after the attack: %d" % attacker.getuid())
    if report.escalated:
        print("=> root achieved via %s capture" % report.outcome.method)
        for note in report.outcome.details:
            print("   - %s" % note)

    inspector = Inspector(machine)
    print()
    print(
        "ground truth: the DRAM module recorded %d disturbance flips"
        % inspector.flip_count()
    )
    print(
        "virtual time: %.3f s; host time: %.1f s"
        % (machine.now_seconds(), host_seconds)
    )


if __name__ == "__main__":
    main()
