"""Section IV-F walked through, phase by phase.

Runs each stage of PThammer separately and narrates what the attacker
learns at every step — useful for understanding how the pieces of the
paper fit together.

    python examples/privilege_escalation.py
"""

from repro import AttackerView, Inspector, Machine, tiny_test_config
from repro.core import PThammerAttack, PThammerConfig
from repro.core.pthammer import PThammerReport
from repro.utils.units import format_duration


def main():
    machine = Machine(tiny_test_config(seed=1))
    attacker = AttackerView(machine, machine.boot_process())
    inspector = Inspector(machine)
    seconds = lambda cycles: format_duration(
        cycles / (machine.config.cpu.freq_ghz * 1e9)
    )

    attack = PThammerAttack(
        attacker, PThammerConfig(spray_slots=256, pair_sample=16, max_pairs=14)
    )
    report = PThammerReport(machine_name=machine.config.name, superpages=True)

    print("[1] calibration + eviction machinery + page-table spray")
    attack.prepare(report)
    print("    latency threshold: %s" % attack.threshold)
    print(
        "    LLC pool: %d eviction sets, prepared in %s (virtual)"
        % (attack.pool.set_count(), seconds(report.llc_prep_cycles))
    )
    print(
        "    spray: %d slots -> %d live Level-1 page tables in the kernel"
        % (attack.spray.slots, inspector.l1pt_count())
    )

    print("[2] pair construction + row-buffer bank verification")
    pairs, llc_sets = attack.find_pairs(report)
    print(
        "    %d candidates at the 256 MiB stride, %d verified same-bank"
        % (report.candidate_pairs, report.same_bank_pairs)
    )
    if pairs:
        pair = pairs[0]
        pte_a = inspector.l1pte_paddr(attacker.process, pair.va_a)
        pte_b = inspector.l1pte_paddr(attacker.process, pair.va_b)
        loc_a, loc_b = inspector.dram_location(pte_a), inspector.dram_location(pte_b)
        print(
            "    ground truth for the best pair: bank %d rows %d/%d "
            "(victim row %d sandwiched)"
            % (loc_a.bank, loc_a.row, loc_b.row, (loc_a.row + loc_b.row) // 2)
        )

    print("[3] implicit double-sided hammering + scan + escalation")
    attack.hammer_pairs(report, pairs, llc_sets)
    costs = report.round_costs
    if costs:
        print(
            "    %d hammer rounds, mean %.0f cycles each"
            % (len(costs), sum(costs) / len(costs))
        )
    print("    flips observed by the attacker: %d" % report.total_flips)
    print("    captures: %s" % report.outcome.captures)
    for note in report.outcome.details:
        print("      - %s" % note)

    print()
    if report.escalated:
        print(
            "SUCCESS: getuid() == %d after %s of virtual time"
            % (attacker.getuid(), seconds(machine.cycles))
        )
    else:
        print("attack did not escalate within its pair budget this run")


if __name__ == "__main__":
    main()
