"""The fast access path, demonstrated: same physics, fewer host cycles.

Walks the two-engine design from docs/PERFORMANCE.md:

1. build two machines from the *same seed* — one on the reference
   engine (``fast_path=False``), one on the fast engine (the
   default) — and run identical double-sided hammer rounds through
   ``AttackerView.touch_many`` on both;
2. prove equivalence — virtual cycles, metrics snapshots, and DRAM
   flip counts must match exactly (the fast engine is required to be
   behaviourally invisible);
3. show the speedup — time only the hot loop with
   ``time.process_time``, the way the ``hammer-loop`` bench does;
4. peek at the machinery — the ``AddressMap`` memo's hit/invalidation
   counters, and a page-table migration bumping a region's generation.

Run time is a few seconds at tiny scale:

    python examples/fast_hammer.py
"""

import json
import time

from repro.core.hammer import DoubleSidedHammer, HammerTarget
from repro.core.llc_pool import EvictionSet
from repro.machine import AttackerView, Machine
from repro.machine.addrmap import ADDRMAP_MISS
from repro.machine.configs import tiny_test_config

ROUNDS = 400
SEED = 11


def build_hammer(machine, attacker):
    """Two hammer targets with real TLB and LLC eviction sets."""
    sets = machine.config.tlb.l1d_sets
    base = attacker.mmap(12 * sets + 40, populate=True)
    targets = []
    for t in (0, 1):
        # 12 pages congruent in one L1-dTLB set, 13 LLC lines, a probe page.
        tlb_set = [base + (i * sets + t) * 4096 + 2048 for i in range(12)]
        lines = [base + (12 * sets + 13 * t + i) * 4096 + 17 * 64 for i in range(13)]
        va = base + (12 * sets + 26 + t) * 4096
        targets.append(HammerTarget(va, tlb_set, EvictionSet(lines, 17)))
    return DoubleSidedHammer(attacker, targets[0], targets[1])


def run_engine(fast):
    machine = Machine(tiny_test_config(seed=SEED), fast_path=fast)
    attacker = AttackerView(machine, machine.boot_process())
    hammer = build_hammer(machine, attacker)
    started = time.process_time()
    hammer.run(rounds=ROUNDS)
    elapsed = time.process_time() - started
    flips = machine.dram.flip_count()
    return machine, elapsed, flips


def main():
    print("== 1+2. same seed, both engines: behaviour must match ==")
    (reference, ref_seconds, ref_flips) = run_engine(fast=False)
    (fast, fast_seconds, fast_flips) = run_engine(fast=True)
    print("reference engine: %8d cycles  %3d flips" % (reference.cycles, ref_flips))
    print("fast engine:      %8d cycles  %3d flips" % (fast.cycles, fast_flips))
    same_metrics = json.dumps(reference.metrics.snapshot_values(), sort_keys=True) == json.dumps(
        fast.metrics.snapshot_values(), sort_keys=True
    )
    assert fast.cycles == reference.cycles, "fast path changed the virtual clock!"
    assert fast_flips == ref_flips, "fast path changed the DRAM physics!"
    assert same_metrics, "fast path changed the metrics!"
    print("virtual cycles equal: %s   metrics snapshots equal: %s" % (
        fast.cycles == reference.cycles, same_metrics,
    ))

    print()
    print("== 3. the same %d hammer rounds, host time ==" % ROUNDS)
    print("reference: %6.3f s" % ref_seconds)
    print("fast:      %6.3f s   (%.2fx)" % (fast_seconds, ref_seconds / fast_seconds))

    print()
    print("== 4. the AddressMap memo underneath ==")
    attacker = AttackerView(fast, fast.boot_process())
    base = attacker.mmap(8, populate=True)
    cr3 = attacker.process.address_space.cr3
    pages = [base + i * 4096 for i in range(8)]
    attacker.read_bulk(pages)  # first sweep resolves the region's L1PT
    attacker.read_bulk(pages)  # later sweeps hit the memo
    stats = fast.addrmap.stats()
    print("addrmap after two 8-page bulk sweeps: %(entries)d entries, "
          "%(hits)d hits, %(misses)d misses, %(invalidations)d invalidations"
          % stats)
    # A page-table migration (what repro.chaos churn does) invalidates
    # exactly the affected 2 MiB region; the next lookup re-resolves.
    assert fast.addrmap.cached_l1pt(cr3, base) is not ADDRMAP_MISS
    fast.ptm.migrate_l1pt(cr3, base)
    print("after migrate_l1pt: cached entry stale -> %s" % (
        "miss" if fast.addrmap.cached_l1pt(cr3, base) is ADDRMAP_MISS else "hit",
    ))
    attacker.read_bulk([base])
    print("after re-resolution: %s" % (
        "miss" if fast.addrmap.cached_l1pt(cr3, base) is ADDRMAP_MISS else "hit",
    ))
    print()
    print("REPRO_FAST_PATH=0 runs everything on the reference engine;")
    print("see docs/PERFORMANCE.md for the invariants and the CI gate.")


if __name__ == "__main__":
    main()
