"""The offline calibration phase: Algorithms 1 and 2 in action.

Reproduces the eviction-set size sweeps behind Figures 3 and 4 on one
machine, runs Algorithm 1's minimal-size search, prepares an LLC
eviction-set pool both ways (superpages vs regular pages), and shows
Algorithm 2 selecting the set congruent with a target's L1PTE.

    python examples/eviction_set_tuning.py
"""

from repro import AttackerView, Inspector, Machine, tiny_test_config
from repro.analysis import render_series
from repro.core import (
    LLCPoolBuilder,
    TLBEvictionSetBuilder,
    UarchFacts,
    calibrate_latency_threshold,
    find_minimal_llc_eviction_size,
    find_minimal_tlb_eviction_size,
    llc_miss_rate_by_size,
    select_llc_eviction_set,
    tlb_miss_rate_by_size,
)


def main():
    machine = Machine(tiny_test_config())
    attacker = AttackerView(machine, machine.boot_process())
    inspector = Inspector(machine)
    facts = UarchFacts.from_config(machine.config)

    print("== Figure 3: TLB eviction-set size sweep ==")
    tlb_builder = TLBEvictionSetBuilder(attacker, facts)
    rates = tlb_miss_rate_by_size(
        attacker, inspector, tlb_builder, sizes=range(8, 17), trials=60
    )
    print(render_series("TLB miss rate", rates, "pages", "rate"))
    minimal_tlb = find_minimal_tlb_eviction_size(
        attacker, inspector, tlb_builder, trials=60
    )
    print("Algorithm 1 minimal TLB eviction-set size: %d pages" % minimal_tlb)

    print()
    print("== Figure 4: LLC eviction-set size sweep ==")
    rates = llc_miss_rate_by_size(
        attacker,
        inspector,
        facts,
        sizes=range(facts.llc_ways - 3, facts.llc_ways + 5),
        trials=60,
    )
    print(render_series("LLC miss rate", rates, "lines", "rate"))
    minimal_llc = find_minimal_llc_eviction_size(attacker, inspector, facts, trials=60)
    print(
        "minimal LLC eviction-set size: %d lines (associativity %d)"
        % (minimal_llc, facts.llc_ways)
    )

    print()
    print("== Pool preparation: superpages vs regular pages ==")
    threshold = calibrate_latency_threshold(attacker)
    builder = LLCPoolBuilder(attacker, facts, threshold, set_size=minimal_llc)
    super_pool = builder.prepare(superpages=True, line_offsets=[1])
    regular_pool = builder.prepare(superpages=False, line_offsets=[1])
    print(
        "superpage pool: %d sets in %d virtual cycles"
        % (super_pool.set_count(), super_pool.prep_cycles)
    )
    print(
        "regular pool:   %d sets in %d virtual cycles"
        % (regular_pool.set_count(), regular_pool.prep_cycles)
    )
    print(
        "(on this tiny 64-set LLC both paths group one set class per page\n"
        " offset, so their costs are comparable; on the scaled/full LLCs the\n"
        " regular-page grouping is far slower — see the Table II benchmark)"
    )

    print()
    print("== Algorithm 2: selecting the L1PTE's eviction set by timing ==")
    target = attacker.mmap(1, at=0x3300_0000_0000 + 8 * 4096, populate=True)
    # Use the paper's measured size (12): Algorithm 2's latency signal
    # needs near-certain TLB eviction on every trial.
    tlb_set = tlb_builder.build(target, max(minimal_tlb, 12))
    chosen, profile = select_llc_eviction_set(attacker, super_pool, tlb_set, target)
    for candidate, latency in profile.items():
        marker = "  <== selected" if candidate is chosen else ""
        print(
            "  candidate set_index=%s: median latency %.1f cycles%s"
            % (candidate.set_index, latency, marker)
        )
    truth = inspector.llc_set_and_slice(inspector.l1pte_paddr(attacker.process, target))
    print("kernel ground truth (evaluation only): set %d slice %d" % truth)


if __name__ == "__main__":
    main()
