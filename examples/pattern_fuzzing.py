"""The hammer-pattern DSL, end to end: write, compile, verify, fuzz.

Walks the pattern pipeline from docs/PATTERNS.md:

1. write a pattern — parse DSL text into a validated AST, print its
   canonical form and the op stream it unrolls to;
2. compile it — lower the ops to coalesced ``touch_many`` turbo
   batches against real hammer targets, and show the step listing
   ``repro patterns show`` prints;
3. trust it — run the compiled program and the scalar reference
   interpreter on same-seed machines and demand identical virtual
   cycles and metrics (the oracle ``tests/test_pattern_equivalence.py``
   enforces event-for-event);
4. fuzz — generate a deterministic Blacksmith-style population with
   ``PatternFuzzer`` and run each candidate through the full tiny
   attack, ranking patterns by the flips they induce (the
   ``repro patternfuzz`` campaign at miniature scale).

Run time is a few seconds at tiny scale:

    python examples/pattern_fuzzing.py
"""

import json

from repro.core import PThammerAttack, PThammerConfig
from repro.core.hammer import HammerTarget
from repro.core.llc_pool import EvictionSet
from repro.machine import AttackerView, Machine
from repro.machine.configs import tiny_test_config
from repro.patterns import (
    PatternFuzzer,
    PatternHammer,
    PatternInterpreter,
    compile_pattern,
    parse,
    register,
    unroll,
)

SEED = 11
ROUNDS = 60
FUZZ_SEED = 7
FUZZ_COUNT = 4

#: A non-uniform pattern: lean on one aggressor, pause, then rotate
#: the emphasis across repetitions.
CUSTOM = """\
pattern leaning_tower:
  aggressors near far
  repeat 3 rotate 1:
    hammer near
    hammer near
    hammer far
    nop 32
"""


def build_targets(machine, attacker):
    """Two hammer targets with real TLB and LLC eviction sets."""
    sets = machine.config.tlb.l1d_sets
    base = attacker.mmap(12 * sets + 40, populate=True)
    targets = []
    for t in (0, 1):
        tlb_set = [base + (i * sets + t) * 4096 + 2048 for i in range(12)]
        lines = [base + (12 * sets + 13 * t + i) * 4096 + 17 * 64 for i in range(13)]
        va = base + (12 * sets + 26 + t) * 4096
        targets.append(HammerTarget(va, tlb_set, EvictionSet(lines, 17)))
    return targets


def run_rounds(executable_for):
    """Boot a fresh machine, hammer ROUNDS of the executable, return it."""
    machine = Machine(tiny_test_config(seed=SEED))
    attacker = AttackerView(machine, machine.boot_process())
    targets = build_targets(machine, attacker)
    PatternHammer(attacker, executable_for(targets)).run(rounds=ROUNDS)
    return machine


def main():
    print("== 1. write a pattern ==")
    pattern = parse(CUSTOM)
    print(pattern.unparse(), end="")
    ops = unroll(pattern)
    print("unrolls to %d ops: %s ..." % (
        len(ops), " ".join(op[0] for op in ops[:6]),
    ))

    print()
    print("== 2. compile it against real targets ==")
    machine = Machine(tiny_test_config(seed=SEED))
    attacker = AttackerView(machine, machine.boot_process())
    compiled = compile_pattern(pattern, build_targets(machine, attacker))
    for line in compiled.describe():
        print("  " + line)

    print()
    print("== 3. compiled turbo batches vs the scalar interpreter ==")
    fast = run_rounds(lambda targets: compile_pattern(pattern, targets))
    oracle = run_rounds(lambda targets: PatternInterpreter(pattern, targets))
    same_metrics = json.dumps(fast.metrics.snapshot_values(), sort_keys=True) == json.dumps(
        oracle.metrics.snapshot_values(), sort_keys=True
    )
    assert fast.cycles == oracle.cycles, "compiler changed the virtual clock!"
    assert same_metrics, "compiler changed the machine state!"
    print("compiled:    %8d cycles" % fast.cycles)
    print("interpreter: %8d cycles   equal: %s   metrics equal: %s" % (
        oracle.cycles, fast.cycles == oracle.cycles, same_metrics,
    ))

    print()
    print("== 4. a seeded fuzzing campaign (seed %d) ==" % FUZZ_SEED)
    fuzzer = PatternFuzzer(seed=FUZZ_SEED)
    rows = []
    for index in range(FUZZ_COUNT):
        candidate = fuzzer.pattern(index)
        register(candidate, replace=True)
        attack_machine = Machine(tiny_test_config(seed=1))
        attack_attacker = AttackerView(
            attack_machine, attack_machine.boot_process()
        )
        config = PThammerConfig(
            spray_slots=256, pair_sample=12, max_pairs=12, pattern=candidate.name
        )
        report = PThammerAttack(attack_attacker, config).run()
        rows.append((report.total_flips, candidate, report.escalated))
    rows.sort(key=lambda row: (-row[0], row[1].name))
    print("%-12s %5s %5s %6s %s" % ("pattern", "roles", "ops", "flips", "escalated"))
    for flips, candidate, escalated in rows:
        print("%-12s %5d %5d %6d %s" % (
            candidate.name, len(candidate.roles),
            len(unroll(candidate)), flips, escalated,
        ))
    print()
    print("`repro patternfuzz --fuzz-seed %d --count N` runs this campaign" % FUZZ_SEED)
    print("in parallel; docs/PATTERNS.md has the grammar and the pipeline.")


if __name__ == "__main__":
    main()
