"""The attack under system noise: chaos profiles and self-healing.

Runs the same seeded tiny-machine attack four times — no chaos, then
under the ``quiet`` / ``desktop`` / ``server`` interference profiles —
and reports, for each, whether the attack still completed and what
recovery work the noise forced (retries, eviction-set rebuilds,
degradations).  Everything is deterministic: re-running this script
reproduces the byte-identical numbers.  Expect a couple of minutes of
host time.

    python examples/chaos_resilience.py
    python examples/chaos_resilience.py --seed 11 --profiles desktop,server

See docs/CHAOS.md for the noise-source catalogue and the recovery
machinery this exercises.
"""

import argparse

from repro.chaos import ChaosInjector, chaos_profile
from repro.core import ATTACK_PHASES, PThammerAttack, PThammerConfig
from repro.machine import AttackerView, Machine
from repro.machine.configs import tiny_test_config

SMALL = dict(spray_slots=256, pair_sample=16, max_pairs=14)


def run_one(seed, profile):
    machine = Machine(tiny_test_config(seed=seed))
    if profile is not None:
        machine.attach_chaos(ChaosInjector(chaos_profile(profile)))
    attacker = AttackerView(machine, machine.boot_process())
    attack = PThammerAttack(attacker, PThammerConfig(**SMALL))
    report = attack.run()
    counters = machine.metrics.counters()
    return {
        "profile": profile or "(none)",
        "phases": len(report.phases_completed),
        "escalated": report.escalated,
        "flips": report.total_flips,
        "cycles": machine.cycles,
        "faults": counters.get("chaos.faults_injected", 0),
        "churn": counters.get("chaos.churn.migrated", 0)
        + counters.get("chaos.churn.dropped", 0),
        "recoveries": sum(
            value
            for name, value in counters.items()
            if name.startswith("recovery.")
            and name.count(".") == 1  # family counters only, no double count
        ),
        "degradations": list(report.degradations),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--profiles",
        default="quiet,desktop,server",
        help="comma-separated chaos profiles to run after the noiseless pass",
    )
    args = parser.parse_args(argv)

    profiles = [None] + [p for p in args.profiles.split(",") if p]
    print(
        "PThammer on tiny (seed %d) under %d interference profiles ..."
        % (args.seed, len(profiles) - 1)
    )
    print()
    header = "%-9s %7s %10s %6s %12s %7s %6s %10s" % (
        "profile", "phases", "escalated", "flips", "cycles",
        "faults", "churn", "recoveries",
    )
    print(header)
    print("-" * len(header))
    rows = [run_one(args.seed, profile) for profile in profiles]
    for row in rows:
        print(
            "%-9s %3d/%-3d %10s %6d %12d %7d %6d %10d"
            % (
                row["profile"],
                row["phases"],
                len(ATTACK_PHASES),
                row["escalated"],
                row["flips"],
                row["cycles"],
                row["faults"],
                row["churn"],
                row["recoveries"],
            )
        )
        for note in row["degradations"]:
            print("          degraded: %s" % note)
    print()
    print("Reading the table:")
    print(" * (none) is the historical noiseless machine — the baseline.")
    print(" * quiet arms the recovery machinery but must never fire it")
    print("   (recoveries stays 0); the run differs from (none) only by")
    print("   the injector's bookkeeping accesses.")
    print(" * desktop/server inject real interference; the pipeline heals")
    print("   (retries, rebuilds, resumes) and the attack still completes")
    print("   every phase — possibly degraded, never crashed.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
