"""Section V: what actually stops PThammer?

Runs explicit hammering and PThammer against three mitigations —
stock ANVIL (load-address sampling), the paper's proposed extended
ANVIL (also watching page-table-walk fetches), and an in-controller
TRR/TWiCe-style counter — and prints ground-truth flip counts.

    python examples/mitigation_matrix.py
"""

from repro import AttackerView, Inspector, Machine, tiny_test_config
from repro.analysis import render_table
from repro.core import PThammerAttack, PThammerConfig, RowhammerTestTool, UarchFacts
from repro.defenses import AnvilDetector


def run_explicit(monitor_factory=None):
    machine = Machine(tiny_test_config(seed=4))
    attacker = AttackerView(machine, machine.boot_process())
    if monitor_factory:
        machine.attach_monitor(monitor_factory(machine))
    tool = RowhammerTestTool(
        attacker, Inspector(machine), UarchFacts.from_config(machine.config),
        buffer_pages=256,
    )
    tool.time_to_first_flip(0, 6 * machine.config.dram.refresh_interval_cycles)
    return Inspector(machine).flip_count(), machine


def run_pthammer(monitor_factory=None, trr=0):
    config = tiny_test_config(seed=1)
    config.dram.trr_threshold = trr
    machine = Machine(config)
    attacker = AttackerView(machine, machine.boot_process())
    if monitor_factory:
        machine.attach_monitor(monitor_factory(machine))
    PThammerAttack(
        attacker, PThammerConfig(spray_slots=256, pair_sample=12, max_pairs=6)
    ).run()
    return Inspector(machine).flip_count(), machine


def main():
    rows = []
    print("running explicit hammer, no mitigation ...", flush=True)
    flips, _ = run_explicit()
    rows.append(("explicit (clflush)", "none", flips))
    print("running explicit hammer vs stock ANVIL ...", flush=True)
    flips, machine = run_explicit(lambda m: AnvilDetector(m))
    rows.append(("explicit (clflush)", "ANVIL (loads)", flips))
    print("running PThammer, no mitigation ...", flush=True)
    flips, _ = run_pthammer()
    rows.append(("PThammer", "none", flips))
    print("running PThammer vs stock ANVIL ...", flush=True)
    flips, _ = run_pthammer(lambda m: AnvilDetector(m))
    rows.append(("PThammer", "ANVIL (loads)", flips))
    print("running PThammer vs extended ANVIL ...", flush=True)
    flips, _ = run_pthammer(lambda m: AnvilDetector(m, watch_walks=True))
    rows.append(("PThammer", "ANVIL (loads+walks)", flips))
    print("running PThammer vs TRR ...", flush=True)
    flips, machine = run_pthammer(trr=150)
    rows.append(("PThammer", "TRR counter", flips))

    print()
    print(
        render_table(
            ["Attack", "Mitigation", "Ground-truth flips"],
            rows,
            title="Section V: mitigation matrix",
        )
    )
    print()
    print("Stock ANVIL samples load addresses, so the page-table walker's")
    print("DRAM traffic is invisible to it — exactly the paper's warning")
    print('that ANVIL "will have to be extended to also check the L1PTE')
    print('addresses to detect PThammer".')


if __name__ == "__main__":
    main()
