"""The run ledger: record runs, compare them, catch regressions.

Walks the longitudinal-observability loop from docs/RUN_LEDGER.md:

1. record — run a curated benchmark and an engine experiment, each
   appending one structured record (git revision, config fingerprint,
   timings, metrics snapshot, outcome) to a ledger directory;
2. browse — list the records and read one back;
3. diff — compare two records metric by metric, direction-aware
   (timings regress upward, flip counts downward);
4. gate — tamper with the baseline to fake a slowdown and watch the
   comparison flag it, exactly as ``repro bench --compare`` would
   before exiting nonzero.

Everything runs at tiny scale against a throwaway ledger directory, so
the whole demo takes seconds and leaves no state behind in
``.repro/runs``.

    python examples/perf_tracking.py
"""

import json
import os
import tempfile

from repro.analysis import ProgressReporter, compare_to_baseline, run_bench, run_experiment
from repro.machine.configs import tiny_test_config
from repro.observe import RunLedger, diff_records


def main():
    root = os.path.join(tempfile.mkdtemp(prefix="repro-ledger-"), "runs")
    ledger = RunLedger(root)

    print("== 1. record a benchmark and an experiment ==")
    bench = run_bench("sec4d-tiny")
    baseline = bench.to_record(label="main")
    ledger.record(baseline)
    print("recorded benchmark %s as %s" % (bench.name, baseline.run_id))

    run = run_experiment(
        "figure3",
        {"config_fns": (tiny_test_config,), "sizes": (8, 12), "trials": 10},
        progress=ProgressReporter(live=False),
        ledger=ledger,
        label="main",
    )
    print("recorded experiment as %s" % run.run_id)

    print()
    print("== 2. browse the ledger ==")
    for record in ledger.list():
        print(record.summary_line())
    loaded = ledger.load(baseline.run_id)
    print("host seconds: %.3f  git rev: %s  config: %s" % (
        loaded.timings["host_seconds"],
        (loaded.git_rev or "-")[:12],
        loaded.config_fingerprint,
    ))

    print()
    print("== 3. rerun and diff the deterministic metrics (quiet) ==")
    # The simulated machine is seeded, so counters and outcomes are
    # identical run to run; only host wall time is noisy, which is why
    # the bench gate compares it with a generous tolerance.
    rerun = run_bench("sec4d-tiny").to_record()
    ledger.record(rerun)
    diff = diff_records(
        baseline, rerun, metrics=lambda name: not name.startswith("time.")
    )
    print(diff.render())
    assert not diff.regressions()

    print()
    print("== 4. a synthetic slowdown trips the regression gate ==")
    # Rewrite the baseline's wall time to ~zero on disk, so the honest
    # rerun above looks arbitrarily slower — the same trick the test
    # suite uses to prove `repro bench --compare` exits nonzero.
    path = os.path.join(root, baseline.run_id + ".json")
    payload = json.load(open(path, encoding="utf-8"))
    payload["timings"]["host_seconds"] = 1e-6
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
    comparison = compare_to_baseline(ledger, "main", [bench], tolerance=0.25)
    print(comparison.render())
    assert comparison.regressions(), "the tampered baseline must regress"
    print("=> repro bench --compare main would exit 3 here")


if __name__ == "__main__":
    main()
