"""Why 'implicit' matters: explicit vs implicit hammer under CATT.

The paper's core argument (Figure 1): explicit hammering can only
disturb rows adjacent to attacker-accessible memory, so a placement
defense like CATT fully protects the kernel from it — while PThammer
makes the MMU hammer *inside* the protected kernel partition.

This example runs both attacks against one CATT-defended machine and
reports where the flips landed.

    python examples/explicit_vs_implicit.py
"""

from repro import AttackerView, Inspector, Machine, tiny_test_config
from repro.core import PThammerAttack, PThammerConfig, RowhammerTestTool, UarchFacts
from repro.defenses import CATTPolicy


def kernel_boundary_row(machine, policy):
    """First non-kernel row: the guard row separating the partitions."""
    return int(machine.geometry.rows * policy.kernel_fraction)


def main():
    policy = CATTPolicy(kernel_fraction=0.1)
    machine = Machine(
        tiny_test_config(seed=5, cells_per_row_mean=40.0), policy=policy
    )
    attacker = AttackerView(machine, machine.boot_process())
    inspector = Inspector(machine)
    boundary = kernel_boundary_row(machine, policy)
    print(
        "CATT partition: kernel rows 1..%d, guard row %d, user rows %d+"
        % (boundary - 1, boundary, boundary + 1)
    )

    print()
    print("[explicit] clflush double-sided hammering of attacker memory ...")
    tool = RowhammerTestTool(
        attacker, inspector, UarchFacts.from_config(machine.config), buffer_pages=256
    )
    tool.time_to_first_flip(0, 6 * machine.config.dram.refresh_interval_cycles)
    explicit_flips = inspector.flips()
    kernel_hits = [f for f in explicit_flips if f.row < boundary]
    guard_hits = [f for f in explicit_flips if f.row == boundary]
    print(
        "   %d flips produced; %d in kernel rows, %d absorbed by the guard row"
        % (len(explicit_flips), len(kernel_hits), len(guard_hits))
    )
    print("   -> explicit hammering cannot reach CATT's kernel partition:")
    print("      its aggressors are user rows, so disturbance lands in user")
    print("      rows or dies in the guard row")

    print()
    print("[implicit] PThammer on the same machine ...")
    before = inspector.flip_count()
    report = PThammerAttack(
        attacker,
        PThammerConfig(spray_slots=1000, pair_sample=20, max_pairs=12),
    ).run()
    implicit_flips = inspector.flips()[before:]
    kernel_hits = [f for f in implicit_flips if f.row < boundary]
    print(
        "   %d flips produced; %d landed in kernel rows"
        % (len(implicit_flips), len(kernel_hits))
    )
    print("   escalated: %s (uid=%d)" % (report.escalated, attacker.getuid()))
    print("   -> the MMU hammered the protected partition on our behalf")


if __name__ == "__main__":
    main()
