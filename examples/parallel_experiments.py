"""The experiment engine: fan-out, checkpointing, and resume.

Walks through the three things the engine adds over calling experiment
runners directly:

1. parallel fan-out — ``jobs=N`` spreads independent tasks over forked
   worker processes with bit-identical results;
2. checkpoint streaming — every finished task lands in a JSONL file the
   moment it completes;
3. resume — a second run with ``resume=True`` skips the tasks already
   on disk (here demonstrated with ``max_tasks`` standing in for a
   killed run).

Everything runs at tiny scale, so the whole demo takes seconds.

    python examples/parallel_experiments.py
"""

import os
import tempfile

from repro.analysis.engine import load_checkpoint, run_experiment
from repro.machine.configs import tiny_test_config

OPTIONS = {
    "config_fns": (tiny_test_config, lambda: tiny_test_config(seed=9)),
    "sizes": (8, 10, 12, 14),
    "trials": 20,
}


def main():
    print("== 1. serial vs parallel (identical results) ==")
    serial = run_experiment("figure3", OPTIONS, jobs=1)
    parallel = run_experiment("figure3", OPTIONS, jobs=2)
    assert serial.result.render() == parallel.result.render()
    print(parallel.result.render())
    print("serial:   %s" % serial.summary())
    print("parallel: %s" % parallel.summary())

    print()
    print("== 2. checkpointed run, interrupted after one task ==")
    path = os.path.join(tempfile.mkdtemp(prefix="repro-engine-"), "figure3.jsonl")
    partial = run_experiment("figure3", OPTIONS, checkpoint=path, max_tasks=1)
    print("interrupted: %s" % partial.summary())
    header, records = load_checkpoint(path)
    print("checkpoint %s holds %d/%d task(s)" % (path, len(records), header["tasks"]))

    print()
    print("== 3. resume completes the remaining tasks ==")
    resumed = run_experiment("figure3", OPTIONS, checkpoint=path, resume=True)
    assert resumed.result.render() == serial.result.render()
    print("resumed:  %s" % resumed.summary())
    print("resumed output matches the uninterrupted run bit-for-bit")


if __name__ == "__main__":
    main()
