"""Sections IV-G and V: PThammer against the software-only defenses.

Boots five machines — undefended, CATT, RIP-RH, CTA, ZebRAM — runs the
same unprivileged attack against each, and prints the outcome matrix.
Expect a few minutes of host time.

    python examples/defense_evaluation.py
"""

from repro.analysis.experiments import section_4g_defenses


def main():
    print("running PThammer against five kernels (a few minutes) ...")
    matrix = section_4g_defenses()
    for result in matrix.results:
        print(
            "  %-7s escalated=%-5s method=%-5s flips=%d (host %.0fs)"
            % (
                result.defense,
                result.escalated,
                result.method,
                result.flips_observed,
                result.host_seconds,
            )
        )
    print()
    print(matrix.render())
    print()
    print("Paper's findings, reproduced in shape:")
    print(" * CATT and RIP-RH fall to L1PT capture — the MMU hammers for us.")
    print(" * CTA's true-cell layer holds (no L1PT capture) but creds fall.")
    print(" * ZebRAM genuinely stops the attack (the paper concedes this).")


if __name__ == "__main__":
    main()
