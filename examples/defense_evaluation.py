"""Sections IV-G and V: PThammer against the software-only defenses.

Boots five machines — undefended, CATT, RIP-RH, CTA, ZebRAM — runs the
same unprivileged attack against each through the experiment engine,
and prints the outcome matrix.  The five runs are independent, so
``--jobs 5`` fans them across worker processes; ``--checkpoint`` makes
an interrupted evaluation resumable.  Expect a few minutes of host time
serially.

    python examples/defense_evaluation.py
    python examples/defense_evaluation.py --jobs 5
    python examples/defense_evaluation.py --checkpoint defenses.jsonl --resume
"""

import argparse
import sys

from repro.analysis.engine import run_experiment


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=1, help="worker processes")
    parser.add_argument("--checkpoint", metavar="FILE", default=None)
    parser.add_argument("--resume", action="store_true")
    args = parser.parse_args(argv)

    print("running PThammer against five kernels (a few minutes) ...")
    run = run_experiment(
        "defenses",
        jobs=args.jobs,
        checkpoint=args.checkpoint,
        resume=args.resume,
        progress=lambda done, total, outcome: print(
            "  [%d/%d] %s done (host %.0fs)"
            % (done, total, outcome.key, outcome.host_seconds),
            file=sys.stderr,
        ),
    )
    matrix = run.result
    for result in matrix.results:
        print(
            "  %-7s escalated=%-5s method=%-5s flips=%d (host %.0fs)"
            % (
                result.defense,
                result.escalated,
                result.method,
                result.flips_observed,
                result.host_seconds,
            )
        )
    print()
    print(matrix.render())
    print()
    print(run.summary())
    print()
    print("Paper's findings, reproduced in shape:")
    print(" * CATT and RIP-RH fall to L1PT capture — the MMU hammers for us.")
    print(" * CTA's true-cell layer holds (no L1PT capture) but creds fall.")
    print(" * ZebRAM genuinely stops the attack (the paper concedes this).")


if __name__ == "__main__":
    main()
